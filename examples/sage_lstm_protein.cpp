// Sequence aggregation over biology data: GraphSAGE-LSTM on the protein
// analogue, comparing the three execution strategies of §4.3 — expansion,
// sparse fetching, and sparse fetching + redundancy bypassing — with both
// the performance counters and a numerical equivalence check.
#include <cstdio>

#include "engine/engine.hpp"
#include "graph/datasets.hpp"
#include "models/reference.hpp"

using namespace gnnbridge;

int main() {
  const graph::Dataset data = graph::make_dataset(graph::DatasetId::kProtein, 0.1);
  std::printf("protein analogue: %d nodes, %lld edges\n", data.stats.num_nodes,
              static_cast<long long>(data.stats.num_edges));

  models::SageLstmConfig cfg;  // 32 features, 16 sampled neighbors
  const models::SageLstmParams params = models::init_sage_lstm(cfg, 55);
  const models::Matrix x = models::init_features(data.csr.num_nodes, cfg.in_feat, 55);
  const baselines::SageLstmRun run{&cfg, &params, &x};
  const models::Matrix expect = models::sage_lstm_forward_ref(data.csr, x, cfg, params);

  struct Level {
    const char* label;
    engine::SageOptLevel level;
  };
  const Level levels[] = {
      {"base: expand + transform every step", engine::SageOptLevel::kBase},
      {"sparse fetching", engine::SageOptLevel::kSparseFetch},
      {"sparse fetching + redundancy bypassing", engine::SageOptLevel::kSparseFetchBypass},
  };

  std::printf("\n%-42s %9s %9s %14s %14s %8s\n", "strategy", "sim ms", "launches",
              "expansion ms", "transform ms", "correct");
  double base_ms = 0.0;
  for (const Level& l : levels) {
    engine::EngineConfig ecfg;
    ecfg.sage_level = l.level;
    engine::OptimizedEngine e(ecfg);
    const auto r = e.run_sage_lstm(data, run, kernels::ExecMode::kFull, sim::v100());
    if (base_ms == 0.0) base_ms = r.ms;
    const sim::DeviceSpec spec = sim::v100();
    std::printf("%-42s %9.3f %9d %14.3f %14.3f %8s\n", l.label, r.ms,
                r.stats.num_launches(), spec.millis(r.stats.cycles_in_phase("expansion")),
                spec.millis(r.stats.cycles_in_phase("transformation")),
                tensor::allclose(r.output, expect, 1e-3f, 1e-4f) ? "yes" : "NO");
  }
  return 0;
}
