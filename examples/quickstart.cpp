// Quickstart: build a graph, run a GCN forward pass through the optimized
// engine, inspect both the numbers and the simulated-GPU counters.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "engine/engine.hpp"
#include "graph/generators.hpp"
#include "models/reference.hpp"

using namespace gnnbridge;

int main() {
  // 1. A graph. Any edge list works; here a small power-law graph.
  tensor::Rng rng(42);
  const auto degrees = graph::power_law_degrees(/*n=*/2000, /*avg=*/12.0, /*alpha=*/0.6,
                                                /*max=*/400.0);
  graph::Dataset data;
  data.name = "quickstart";
  data.coo = graph::chung_lu(degrees, rng);
  data.csr = graph::csr_from_coo(data.coo);
  data.csc = graph::csc_from_coo(data.coo);
  data.stats = graph::degree_stats(data.csr);
  std::printf("graph: %d nodes, %lld edges, avg degree %.1f, max %lld\n", data.stats.num_nodes,
              static_cast<long long>(data.stats.num_edges), data.stats.avg_degree,
              static_cast<long long>(data.stats.max_degree));

  // 2. A model: 2-layer GCN, 64 -> 32 -> 8.
  models::GcnConfig cfg;
  cfg.dims = {64, 32, 8};
  const models::GcnParams params = models::init_gcn(cfg, /*seed=*/7);
  const models::Matrix x = models::init_features(data.csr.num_nodes, 64, /*seed=*/7);

  // 3. Run it through the optimized engine (LAS + NG + fusion on by
  //    default) in full mode: real outputs plus simulated-GPU counters.
  engine::OptimizedEngine ours;
  const baselines::GcnRun run{&cfg, &params, &x};
  const auto result = ours.run_gcn(data, run, kernels::ExecMode::kFull, sim::v100());

  std::printf("output: [%lld x %lld], first row:", static_cast<long long>(result.output.rows()),
              static_cast<long long>(result.output.cols()));
  for (tensor::Index f = 0; f < result.output.cols(); ++f) {
    std::printf(" %+.3f", result.output(0, f));
  }
  std::printf("\n");

  // 4. Verify against the straightforward reference implementation.
  const models::Matrix expect = models::gcn_forward_ref(data.csr, x, cfg, params);
  std::printf("matches reference: %s (max |diff| = %.2e)\n",
              tensor::allclose(result.output, expect, 1e-3f, 1e-4f) ? "yes" : "NO",
              static_cast<double>(tensor::max_abs_diff(result.output, expect)));

  // 5. What the simulated V100 saw.
  std::printf("simulated: %.3f ms, %d kernel launches, L2 hit rate %.1f%%, %.2f GFLOPS\n",
              result.ms, result.stats.num_launches(), 100.0 * result.stats.l2_hit_rate(),
              result.stats.gflops(sim::v100()));
  return 0;
}
