// Node classification on a citation graph (the paper's motivating
// workload): a 3-layer GCN over the citation analogue, executed by every
// framework backend, demonstrating (a) identical predictions and (b) the
// performance gaps of Figure 7a.
#include <algorithm>
#include <cstdio>

#include "baselines/dgl.hpp"
#include "baselines/pyg.hpp"
#include "baselines/roc.hpp"
#include "engine/engine.hpp"
#include "graph/datasets.hpp"
#include "tensor/activations.hpp"

using namespace gnnbridge;

namespace {
/// Argmax class per node from the output logits.
std::vector<int> predict(const models::Matrix& logits) {
  std::vector<int> out(static_cast<std::size_t>(logits.rows()));
  for (tensor::Index r = 0; r < logits.rows(); ++r) {
    auto row = logits.row(r);
    out[static_cast<std::size_t>(r)] =
        static_cast<int>(std::max_element(row.begin(), row.end()) - row.begin());
  }
  return out;
}
}  // namespace

int main() {
  // A small citation-shaped graph so the full-math pass stays quick.
  const graph::Dataset data = graph::make_dataset(graph::DatasetId::kCitation, 0.03);
  std::printf("citation analogue: %d nodes, %lld edges\n", data.stats.num_nodes,
              static_cast<long long>(data.stats.num_edges));

  // 3-layer GCN: 64 input features -> 8 "classes".
  models::GcnConfig cfg;
  cfg.dims = {64, 32, 16, 8};
  const models::GcnParams params = models::init_gcn(cfg, 21);
  const models::Matrix x = models::init_features(data.csr.num_nodes, 64, 21);
  const baselines::GcnRun run{&cfg, &params, &x};

  baselines::DglBackend dgl;
  baselines::PygBackend pyg;
  baselines::RocBackend roc;
  engine::OptimizedEngine ours;

  struct Entry {
    const char* name;
    baselines::RunResult result;
  };
  std::vector<Entry> entries;
  entries.push_back({"DGL", dgl.run_gcn(data, run, kernels::ExecMode::kFull, sim::v100())});
  entries.push_back({"PyG", pyg.run_gcn(data, run, kernels::ExecMode::kFull, sim::v100())});
  entries.push_back({"ROC", roc.run_gcn(data, run, kernels::ExecMode::kFull, sim::v100())});
  entries.push_back({"Ours", ours.run_gcn(data, run, kernels::ExecMode::kFull, sim::v100())});

  const std::vector<int> baseline_pred = predict(entries[0].result.output);
  std::printf("\n%-6s %12s %10s %14s %18s\n", "fw", "sim ms", "launches", "L2 hit %",
              "same predictions");
  for (const Entry& e : entries) {
    int agree = 0;
    const std::vector<int> pred = predict(e.result.output);
    for (std::size_t i = 0; i < pred.size(); ++i) agree += (pred[i] == baseline_pred[i]);
    std::printf("%-6s %12.3f %10d %13.1f%% %11d/%d\n", e.name, e.result.ms,
                e.result.stats.num_launches(), 100.0 * e.result.stats.l2_hit_rate(), agree,
                data.stats.num_nodes);
  }
  std::printf("\nspeedup of Ours over DGL: %.2fx\n", entries[0].result.ms / entries[3].result.ms);
  return 0;
}
