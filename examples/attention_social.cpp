// Graph attention on a social network: a GAT layer stack over the reddit
// analogue, demonstrating how each optimization contributes — the Table 6
// story as a runnable program.
#include <cstdio>

#include "engine/engine.hpp"
#include "graph/datasets.hpp"

using namespace gnnbridge;

namespace {
double run_with(const engine::EngineConfig& cfg, const graph::Dataset& d,
                const models::GatConfig& gat_cfg, const models::GatParams& params,
                const models::Matrix& x, int* launches = nullptr) {
  engine::OptimizedEngine e(cfg);
  const baselines::GatRun run{&gat_cfg, &params, &x};
  const auto r = e.run_gat(d, run, kernels::ExecMode::kSimulateOnly, sim::v100());
  if (launches) *launches = r.stats.num_launches();
  return r.ms;
}
}  // namespace

int main() {
  const graph::Dataset data = graph::make_dataset(graph::DatasetId::kReddit, 0.15);
  std::printf("reddit analogue: %d nodes, %lld edges, max degree %lld\n", data.stats.num_nodes,
              static_cast<long long>(data.stats.num_edges),
              static_cast<long long>(data.stats.max_degree));

  models::GatConfig cfg;
  cfg.dims = {128, 64, 32};
  const models::GatParams params = models::init_gat(cfg, 33);
  const models::Matrix x = models::init_features(data.csr.num_nodes, 128, 33);

  engine::EngineConfig unopt;
  unopt.use_adapter = unopt.use_linear = false;
  unopt.use_neighbor_grouping = unopt.use_las = false;

  struct Step {
    const char* label;
    engine::EngineConfig cfg;
  };
  std::vector<Step> steps;
  steps.push_back({"unoptimized (Listing-1 pipeline)", unopt});
  auto cfg1 = unopt;
  cfg1.use_adapter = cfg1.use_linear = true;
  steps.push_back({"+ visible-range adapter & linear property", cfg1});
  auto cfg2 = cfg1;
  cfg2.use_neighbor_grouping = true;
  steps.push_back({"+ neighbor grouping", cfg2});
  auto cfg3 = cfg2;
  cfg3.use_las = true;
  steps.push_back({"+ locality-aware scheduling", cfg3});

  double base_ms = 0.0;
  std::printf("\n%-44s %10s %10s %10s\n", "configuration", "sim ms", "launches", "speedup");
  for (const Step& s : steps) {
    int launches = 0;
    const double ms = run_with(s.cfg, data, cfg, params, x, &launches);
    if (base_ms == 0.0) base_ms = ms;
    std::printf("%-44s %10.3f %10d %9.2fx\n", s.label, ms, launches, base_ms / ms);
  }
  return 0;
}
