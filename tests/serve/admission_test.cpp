// Overload-safe serving core (DESIGN.md §14): admission decisions as pure
// sim-time functions of the job stream — bounded queue, per-tenant token
// buckets, deadline/memory feasibility, priority-classed shedding behind
// the ladder, weighted-fair dispatch, cost-cache warming — plus the new
// kResourceExhausted/retry-after rejection contract, the journal event
// shapes ("shed" / "quota" / "admission_reject") and byte-identical
// exports at 1/2/8 host threads.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "graph/datasets.hpp"
#include "obs/journal.hpp"
#include "obs/registry.hpp"
#include "par/thread_pool.hpp"
#include "prof/metrics_json.hpp"
#include "rt/deadline.hpp"
#include "rt/retry.hpp"
#include "serve/admission.hpp"

namespace gnnbridge {
namespace {

using engine::OptimizedEngine;
using serve::AdmissionConfig;
using serve::AdmissionController;
using serve::BatchJob;
using serve::Decision;
using serve::Priority;
using serve::TenantQuota;

class AdmissionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prof::MetricsSink::instance().clear();
    obs::EventJournal::instance().clear();
    obs::EventJournal::instance().set_enabled(false);
  }
  void TearDown() override {
    obs::EventJournal::instance().set_enabled(false);
    obs::EventJournal::instance().clear();
    prof::MetricsSink::instance().clear();
    par::set_max_threads(0);
  }
};

struct Inputs {
  graph::Dataset collab = graph::make_dataset(graph::DatasetId::kCollab, 0.02);
  models::GcnConfig gcn_cfg;
  models::GatConfig gat_cfg;
  models::GcnParams gcn_params;
  models::GatParams gat_params;
  models::Matrix x;
  baselines::GcnRun gcn;
  baselines::GatRun gat;

  Inputs() {
    gcn_cfg.dims = {32, 16};
    gat_cfg.dims = {32, 16};
    gcn_params = models::init_gcn(gcn_cfg, 1);
    gat_params = models::init_gat(gat_cfg, 2);
    x = models::init_features(collab.csr.num_nodes, 32, 4);
    gcn = {&gcn_cfg, &gcn_params, &x};
    gat = {&gat_cfg, &gat_params, &x};
  }
};

const Inputs& inputs() {
  static const Inputs* in = new Inputs();
  return *in;
}

BatchJob make_job(const char* tenant, Priority prio, double arrival, bool gat = false) {
  const Inputs& in = inputs();
  BatchJob job;
  job.data = &in.collab;
  if (gat) {
    job.gat = &in.gat;
  } else {
    job.gcn = &in.gcn;
  }
  job.mode = kernels::ExecMode::kSimulateOnly;
  job.spec = sim::v100();
  job.tenant = tenant;
  job.priority = static_cast<int>(prio);
  job.arrival_cycles = arrival;
  return job;
}

/// A config whose thresholds/budgets are far out of reach, so individual
/// tests can lower exactly the limit under test.
AdmissionConfig permissive_config() {
  AdmissionConfig cfg;
  cfg.max_queue_depth = 1000;
  cfg.service_rate = 1.0;
  cfg.memory_budget_bytes = 1e18;
  cfg.degrade_backlog_cycles = 1e18;
  cfg.shed_low_backlog_cycles = 1e18;
  cfg.shed_normal_backlog_cycles = 1e18;
  cfg.default_quota = TenantQuota{.rate = 1e9, .burst_cycles = 1e18, .weight = 1.0};
  return cfg;
}

std::string fmt12g(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

TEST_F(AdmissionTest, EstimatorsScaleWithModelAndAreDeterministic) {
  const BatchJob gcn = make_job("t", Priority::kNormal, 0.0);
  const BatchJob gat = make_job("t", Priority::kNormal, 0.0, /*gat=*/true);
  const double gcn_cost = serve::estimate_job_cost(gcn);
  const double gat_cost = serve::estimate_job_cost(gat);
  EXPECT_GT(gcn_cost, 0.0);
  EXPECT_GT(gat_cost, gcn_cost) << "attention must cost more than plain aggregation";
  EXPECT_DOUBLE_EQ(serve::estimate_job_cost(gcn), gcn_cost);
  EXPECT_GT(serve::estimate_job_bytes(gcn), 0.0);
  EXPECT_GT(serve::estimate_job_bytes(gat), serve::estimate_job_bytes(gcn))
      << "edge-heavy models hold an extra [E, F] message buffer";
  const BatchJob empty;
  EXPECT_EQ(serve::estimate_job_cost(empty), 0.0);
  EXPECT_EQ(serve::estimate_job_bytes(empty), 0.0);
  EXPECT_TRUE(serve::cost_key(empty).empty());
  EXPECT_EQ(serve::cost_key(gcn).rfind("gcn/", 0), 0u) << serve::cost_key(gcn);
}

TEST_F(AdmissionTest, ParseRetryAfterRoundTrips) {
  EXPECT_DOUBLE_EQ(serve::parse_retry_after("shed (retry_after_cycles=1536.5)"), 1536.5);
  EXPECT_DOUBLE_EQ(serve::parse_retry_after("x (retry_after_cycles=2.5e9)"), 2.5e9);
  EXPECT_LT(serve::parse_retry_after("no hint here"), 0.0);
  EXPECT_LT(serve::parse_retry_after("retry_after_cycles=junk"), 0.0);
}

TEST_F(AdmissionTest, AdmitsEverythingUnderCapacity) {
  OptimizedEngine eng;
  AdmissionController ctl(permissive_config());
  const double est = serve::estimate_job_cost(make_job("t", Priority::kNormal, 0.0));
  std::vector<BatchJob> jobs;
  for (int i = 0; i < 4; ++i) {
    // Spaced at twice the service time: the virtual queue drains between
    // arrivals, so nobody waits.
    jobs.push_back(make_job("t", Priority::kNormal, 2.0 * est * i));
  }
  const serve::ServeResult sr = ctl.serve(eng, jobs);
  ASSERT_EQ(sr.results.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(sr.decisions[i].outcome, Decision::Outcome::kAdmitted) << "job " << i;
    EXPECT_TRUE(sr.results[i].status.ok()) << sr.results[i].status.to_string();
    EXPECT_DOUBLE_EQ(sr.decisions[i].queue_wait_cycles, 0.0) << "job " << i;
    EXPECT_EQ(sr.decisions[i].shed_level, 0);
  }
  EXPECT_EQ(sr.stats.submitted, 4u);
  EXPECT_EQ(sr.stats.admitted, 4u);
  EXPECT_EQ(sr.stats.overload_transitions, 0u);
  EXPECT_EQ(ctl.shed_level(), 0);
}

TEST_F(AdmissionTest, ShedsByPriorityClassUnderBacklog) {
  OptimizedEngine eng;
  const double est = serve::estimate_job_cost(make_job("t", Priority::kNormal, 0.0));
  AdmissionConfig cfg = permissive_config();
  cfg.degrade_backlog_cycles = 0.5 * est;
  cfg.shed_low_backlog_cycles = 0.9 * est;
  cfg.shed_normal_backlog_cycles = 100.0 * est;  // level 3 out of reach
  AdmissionController ctl(cfg);

  // All at arrival 0: job 0 builds one job of backlog, so jobs 1..3 see
  // level 2 — low is shed, normal and high still get through.
  std::vector<BatchJob> jobs = {
      make_job("t", Priority::kNormal, 0.0),
      make_job("t", Priority::kLow, 0.0),
      make_job("t", Priority::kNormal, 0.0),
      make_job("t", Priority::kHigh, 0.0),
  };
  const serve::ServeResult sr = ctl.serve(eng, jobs);
  EXPECT_EQ(sr.decisions[0].outcome, Decision::Outcome::kAdmitted);
  ASSERT_EQ(sr.decisions[1].outcome, Decision::Outcome::kShed);
  EXPECT_EQ(sr.decisions[2].outcome, Decision::Outcome::kAdmitted);
  EXPECT_EQ(sr.decisions[3].outcome, Decision::Outcome::kAdmitted);

  const rt::Status& s = sr.results[1].status;
  EXPECT_EQ(s.code(), rt::StatusCode::kResourceExhausted);
  EXPECT_EQ(sr.results[1].attempts, 0);
  EXPECT_GT(sr.decisions[1].retry_after_cycles, 0.0);
  EXPECT_DOUBLE_EQ(serve::parse_retry_after(s.message()), sr.decisions[1].retry_after_cycles)
      << s.message();
  EXPECT_EQ(sr.stats.shed_low, 1u);
  EXPECT_EQ(sr.stats.shed_normal, 0u);
  EXPECT_EQ(sr.stats.shed_high, 0u);
  EXPECT_GE(sr.stats.overload_transitions, 2u) << "0 -> 2 in one arrival";
  EXPECT_GE(ctl.shed_level(), 1);
  // Sustained overload tripped the degradation ladder before shedding
  // escalated: the pre-degrade events reached the metrics sink.
  const std::string doc = prof::MetricsSink::instance().to_json();
  EXPECT_NE(doc.find("admission_overload"), std::string::npos) << doc;
  EXPECT_NE(doc.find("overload_pre_degrade"), std::string::npos) << doc;
}

TEST_F(AdmissionTest, TokenBucketRejectsOverQuotaTenant) {
  OptimizedEngine eng;
  const double est = serve::estimate_job_cost(make_job("t", Priority::kNormal, 0.0));
  AdmissionConfig cfg = permissive_config();
  cfg.quotas["capped"] = TenantQuota{.rate = 1.0, .burst_cycles = 1.5 * est, .weight = 1.0};
  AdmissionController ctl(cfg);

  std::vector<BatchJob> jobs = {
      make_job("capped", Priority::kHigh, 0.0),
      make_job("capped", Priority::kHigh, 0.0),
      make_job("other", Priority::kHigh, 0.0),
  };
  const serve::ServeResult sr = ctl.serve(eng, jobs);
  EXPECT_EQ(sr.decisions[0].outcome, Decision::Outcome::kAdmitted);
  ASSERT_EQ(sr.decisions[1].outcome, Decision::Outcome::kRejectedQuota);
  EXPECT_EQ(sr.decisions[2].outcome, Decision::Outcome::kAdmitted)
      << "quotas are per tenant; 'other' is unaffected";
  // Bucket started at 1.5x est, the first job debited est: the second
  // needs 0.5x est more, at refill rate 1.0.
  EXPECT_DOUBLE_EQ(sr.decisions[1].retry_after_cycles, 0.5 * est);
  EXPECT_EQ(sr.results[1].status.code(), rt::StatusCode::kResourceExhausted);
  EXPECT_NE(sr.results[1].status.message().find("over quota"), std::string::npos);
  EXPECT_EQ(sr.stats.rejected_quota, 1u);

  // Tokens accrue with the arrival clock: after the hinted wait, the same
  // job is admitted.
  std::vector<BatchJob> retry = {
      make_job("capped", Priority::kHigh, sr.decisions[1].retry_after_cycles + 2.0 * est)};
  const serve::ServeResult sr2 = ctl.serve(eng, retry);
  EXPECT_EQ(sr2.decisions[0].outcome, Decision::Outcome::kAdmitted);
}

TEST_F(AdmissionTest, QuotaMaxWaitAdmitsWithAStallInsteadOfRejecting) {
  obs::EventJournal::instance().set_enabled(true);
  OptimizedEngine eng;
  const double est = serve::estimate_job_cost(make_job("t", Priority::kNormal, 0.0));
  AdmissionConfig cfg = permissive_config();
  // Bucket starts at 1.5x est; a refill wait up to 0.6x est is absorbed as
  // a recorded quota stall, anything longer still rejects.
  cfg.quotas["capped"] = TenantQuota{
      .rate = 1.0, .burst_cycles = 1.5 * est, .weight = 1.0, .max_wait_cycles = 0.6 * est};
  AdmissionController ctl(cfg);

  std::vector<BatchJob> jobs = {
      make_job("capped", Priority::kHigh, 0.0),
      make_job("capped", Priority::kHigh, 0.0),
      make_job("capped", Priority::kHigh, 0.0),
  };
  const serve::ServeResult sr = ctl.serve(eng, jobs);
  // Job 0 debits est, leaving 0.5x est. Job 1 needs 0.5x est more — a
  // 0.5x-est wait fits under max_wait_cycles, so it is admitted with the
  // stall priced into the decision and the bucket drained at admit.
  EXPECT_EQ(sr.decisions[0].outcome, Decision::Outcome::kAdmitted);
  EXPECT_DOUBLE_EQ(sr.decisions[0].quota_wait_cycles, 0.0);
  ASSERT_EQ(sr.decisions[1].outcome, Decision::Outcome::kAdmitted);
  EXPECT_DOUBLE_EQ(sr.decisions[1].quota_wait_cycles, 0.5 * est);
  EXPECT_TRUE(sr.results[1].status.ok()) << sr.results[1].status.to_string();
  // Job 2 arrives against an empty bucket that job 1's stall has already
  // committed until 0.5x est: its wait owes that committed remainder plus
  // a full est-cycle refill — 1.5x est, over max_wait_cycles, so the
  // original reject-with-hint semantics apply (and the hint prices the
  // commitment, not just this job's own refill).
  ASSERT_EQ(sr.decisions[2].outcome, Decision::Outcome::kRejectedQuota);
  EXPECT_NE(sr.results[2].status.message().find("over quota"), std::string::npos);
  EXPECT_DOUBLE_EQ(sr.decisions[2].retry_after_cycles, 1.5 * est);

  // The stall is journaled as a "quota_wait" event so the critical-path
  // analyzer can attribute it.
  const std::string jsonl = obs::EventJournal::instance().to_jsonl();
  EXPECT_NE(jsonl.find("\"type\":\"quota_wait\""), std::string::npos) << jsonl;
  EXPECT_NE(jsonl.find("\"cycles\":" + fmt12g(0.5 * est)), std::string::npos) << jsonl;
}

TEST_F(AdmissionTest, OverlappingQuotaStallsQueueAfterEachOther) {
  OptimizedEngine eng;
  const double est = serve::estimate_job_cost(make_job("t", Priority::kNormal, 0.0));
  AdmissionConfig cfg = permissive_config();
  cfg.quotas["capped"] = TenantQuota{
      .rate = 1.0, .burst_cycles = 1.5 * est, .weight = 1.0, .max_wait_cycles = 3.0 * est};
  AdmissionController ctl(cfg);

  std::vector<BatchJob> jobs = {
      make_job("capped", Priority::kHigh, 0.0),
      make_job("capped", Priority::kHigh, 0.0),
      make_job("capped", Priority::kHigh, 0.0),
      make_job("capped", Priority::kHigh, 0.0),
  };
  const serve::ServeResult sr = ctl.serve(eng, jobs);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_EQ(sr.decisions[i].outcome, Decision::Outcome::kAdmitted) << "job " << i;
  }
  // Job 0 debits est from the 1.5x-est bucket without stalling. Every
  // later job arrives (at cycle 0) against a bucket already committed
  // until the previous job's ready instant, so the stalls must queue
  // after each other — each exactly one full est-cycle refill longer than
  // the last. If the commitment were ignored, the refill between arrival
  // and the committed instant would be spent twice and jobs 2/3 would
  // understate their waits (1x/1x est instead of 1.5x/2.5x).
  EXPECT_DOUBLE_EQ(sr.decisions[0].quota_wait_cycles, 0.0);
  EXPECT_DOUBLE_EQ(sr.decisions[1].quota_wait_cycles, 0.5 * est);
  EXPECT_DOUBLE_EQ(sr.decisions[2].quota_wait_cycles, 1.5 * est);
  EXPECT_DOUBLE_EQ(sr.decisions[3].quota_wait_cycles, 2.5 * est);
}

TEST_F(AdmissionTest, BoundedQueueRejectsBeyondDepth) {
  OptimizedEngine eng;
  AdmissionConfig cfg = permissive_config();
  cfg.max_queue_depth = 1;
  AdmissionController ctl(cfg);
  std::vector<BatchJob> jobs = {
      make_job("t", Priority::kHigh, 0.0),
      make_job("t", Priority::kHigh, 0.0),
      make_job("t", Priority::kHigh, 0.0),
  };
  const serve::ServeResult sr = ctl.serve(eng, jobs);
  EXPECT_EQ(sr.decisions[0].outcome, Decision::Outcome::kAdmitted);
  EXPECT_EQ(sr.decisions[1].outcome, Decision::Outcome::kRejectedQueueFull);
  EXPECT_EQ(sr.decisions[2].outcome, Decision::Outcome::kRejectedQueueFull);
  EXPECT_GT(sr.decisions[1].retry_after_cycles, 0.0)
      << "hint: wait for the queue head to virtually complete";
  EXPECT_EQ(sr.stats.rejected_queue_full, 2u);
  EXPECT_EQ(sr.stats.peak_queue_depth, 1u);
}

TEST_F(AdmissionTest, InfeasibleDeadlineRejectedBeforeBurningEngineTime) {
  OptimizedEngine eng;
  AdmissionController ctl(permissive_config());
  BatchJob job = make_job("t", Priority::kHigh, 0.0);
  const double est = serve::estimate_job_cost(job);
  job.deadline = rt::Deadline::cycles(0.5 * est);
  const serve::ServeResult sr = ctl.serve(eng, {&job, 1});
  ASSERT_EQ(sr.decisions[0].outcome, Decision::Outcome::kRejectedDeadline);
  EXPECT_DOUBLE_EQ(sr.decisions[0].retry_after_cycles, 0.0)
      << "retrying an infeasible deadline cannot help";
  EXPECT_EQ(sr.results[0].attempts, 0);
  EXPECT_NE(sr.results[0].status.message().find("deadline infeasible"), std::string::npos);
}

TEST_F(AdmissionTest, MemoryBudgetBoundsTheQueuedFootprint) {
  OptimizedEngine eng;
  BatchJob probe = make_job("t", Priority::kHigh, 0.0);
  AdmissionConfig cfg = permissive_config();
  cfg.memory_budget_bytes = 1.5 * serve::estimate_job_bytes(probe);
  AdmissionController ctl(cfg);
  std::vector<BatchJob> jobs = {
      make_job("t", Priority::kHigh, 0.0),
      make_job("t", Priority::kHigh, 0.0),
  };
  const serve::ServeResult sr = ctl.serve(eng, jobs);
  EXPECT_EQ(sr.decisions[0].outcome, Decision::Outcome::kAdmitted);
  ASSERT_EQ(sr.decisions[1].outcome, Decision::Outcome::kRejectedMemory);
  EXPECT_EQ(sr.stats.rejected_memory, 1u);
  EXPECT_NE(sr.results[1].status.message().find("over budget"), std::string::npos);
}

TEST_F(AdmissionTest, CostCacheReplacesAnalyticEstimateWithMeasuredCycles) {
  OptimizedEngine eng;
  AdmissionController ctl(permissive_config());
  const BatchJob job = make_job("t", Priority::kNormal, 0.0);
  const double analytic = ctl.estimate_cost_cycles(job);
  EXPECT_DOUBLE_EQ(analytic, serve::estimate_job_cost(job));
  EXPECT_EQ(ctl.cost_cache_size(), 0u);
  const serve::ServeResult sr = ctl.serve(eng, {&job, 1});
  ASSERT_TRUE(sr.results[0].status.ok());
  EXPECT_EQ(ctl.cost_cache_size(), 1u);
  EXPECT_DOUBLE_EQ(ctl.estimate_cost_cycles(job), sr.results[0].stats.total_cycles)
      << "after one completed wave the fingerprint-keyed measured cost wins";
}

TEST_F(AdmissionTest, WeightedFairDispatchFavorsTheHeavierTenant) {
  obs::EventJournal::instance().set_enabled(true);
  OptimizedEngine eng;
  AdmissionConfig cfg = permissive_config();
  cfg.quotas["light"] = TenantQuota{.rate = 1e9, .burst_cycles = 1e18, .weight = 1.0};
  cfg.quotas["heavy"] = TenantQuota{.rate = 1e9, .burst_cycles = 1e18, .weight = 4.0};
  cfg.wave_size = 4;
  AdmissionController ctl(cfg);
  // Input order: light, light, heavy, heavy — all at arrival 0, equal
  // cost. heavy's virtual finish times are 4x smaller, so it dispatches
  // first despite arriving later in the input.
  std::vector<BatchJob> jobs = {
      make_job("light", Priority::kNormal, 0.0),
      make_job("light", Priority::kNormal, 0.0),
      make_job("heavy", Priority::kNormal, 0.0),
      make_job("heavy", Priority::kNormal, 0.0),
  };
  const serve::ServeResult sr = ctl.serve(eng, jobs);
  for (const auto& r : sr.results) ASSERT_TRUE(r.status.ok());
  std::vector<std::string> dispatch_order;
  for (const obs::JournalEvent& ev : obs::EventJournal::instance().snapshot()) {
    if (ev.type == "admission") dispatch_order.push_back(ev.request_id);
  }
  ASSERT_EQ(dispatch_order.size(), 4u);
  EXPECT_EQ(dispatch_order[0], "req-s0-2");
  EXPECT_EQ(dispatch_order[1], "req-s0-3");
  EXPECT_EQ(dispatch_order[2], "req-s0-0");
  EXPECT_EQ(dispatch_order[3], "req-s0-1");
}

TEST_F(AdmissionTest, RejectionJournalEventShapesAreGolden) {
  obs::EventJournal::instance().set_enabled(true);
  OptimizedEngine eng;
  const double est = serve::estimate_job_cost(make_job("t", Priority::kNormal, 0.0));
  AdmissionConfig cfg = permissive_config();
  cfg.degrade_backlog_cycles = 1.0;  // level 1 from the first queued job on
  cfg.shed_low_backlog_cycles = 0.5 * est;
  cfg.quotas["b"] = TenantQuota{.rate = 1.0, .burst_cycles = 0.25 * est, .weight = 1.0};
  AdmissionController ctl(cfg);
  std::vector<BatchJob> jobs = {
      make_job("a", Priority::kHigh, 0.0),   // admitted, builds backlog
      make_job("b", Priority::kLow, 0.0),    // shed at level 2
      make_job("b", Priority::kHigh, 0.0),   // survives the ladder, dies on quota
  };
  const serve::ServeResult sr = ctl.serve(eng, jobs);
  ASSERT_EQ(sr.decisions[1].outcome, Decision::Outcome::kShed);
  ASSERT_EQ(sr.decisions[2].outcome, Decision::Outcome::kRejectedQuota);

  // Rejections are journaled in arrival order BEFORE any engine wave, so
  // they own the first seq numbers; byte-exact golden lines, rebuilt from
  // the documented formats.
  const double shed_retry = est - cfg.degrade_backlog_cycles;
  const std::string golden_shed =
      "{\"seq\":0,\"req\":\"req-s0-1\",\"type\":\"shed\",\"key\":\"b\","
      "\"code\":\"RESOURCE_EXHAUSTED\",\"detail\":\"shed low-priority job at overload level 2 "
      "(retry_after_cycles=" + fmt12g(shed_retry) + ")\",\"attempt\":0,\"cycles\":" +
      fmt12g(shed_retry) + "}";
  const double quota_retry = est - 0.25 * est;
  const std::string golden_quota =
      "{\"seq\":1,\"req\":\"req-s0-2\",\"type\":\"quota\",\"key\":\"b\","
      "\"code\":\"RESOURCE_EXHAUSTED\",\"detail\":\"tenant 'b' over quota (needs " +
      fmt12g(est) + " cost-cycles, has " + fmt12g(0.25 * est) + ") (retry_after_cycles=" +
      fmt12g(quota_retry) + ")\",\"attempt\":0,\"cycles\":" + fmt12g(quota_retry) + "}";
  const std::string jsonl = obs::EventJournal::instance().to_jsonl();
  std::vector<std::string> lines;
  for (std::size_t pos = 0; pos < jsonl.size();) {
    const std::size_t nl = jsonl.find('\n', pos);
    lines.push_back(jsonl.substr(pos, nl - pos));
    pos = nl + 1;
  }
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0], golden_shed);
  EXPECT_EQ(lines[1], golden_quota);
}

TEST_F(AdmissionTest, QueueFullEventUsesAdmissionRejectType) {
  obs::EventJournal::instance().set_enabled(true);
  OptimizedEngine eng;
  AdmissionConfig cfg = permissive_config();
  cfg.max_queue_depth = 1;
  AdmissionController ctl(cfg);
  std::vector<BatchJob> jobs = {
      make_job("t", Priority::kHigh, 0.0),
      make_job("t", Priority::kHigh, 0.0),
  };
  (void)ctl.serve(eng, jobs);
  const std::string jsonl = obs::EventJournal::instance().to_jsonl();
  EXPECT_NE(jsonl.find("\"type\":\"admission_reject\""), std::string::npos) << jsonl;
  EXPECT_NE(jsonl.find("admission queue full"), std::string::npos) << jsonl;
}

TEST_F(AdmissionTest, SynthesizedAndDuplicateRequestIds) {
  OptimizedEngine eng;
  AdmissionController ctl(permissive_config());
  std::vector<BatchJob> jobs = {
      make_job("t", Priority::kNormal, 0.0),
      make_job("t", Priority::kNormal, 0.0),
      make_job("t", Priority::kNormal, 0.0),
  };
  jobs[1].request_id = "dup";
  jobs[2].request_id = "dup";
  const serve::ServeResult sr = ctl.serve(eng, jobs);
  EXPECT_EQ(sr.request_ids[0], "req-s0-0");
  EXPECT_EQ(sr.request_ids[1], "dup");
  EXPECT_EQ(sr.request_ids[2], "dup#2");
  // The next serve() call advances the synthesized-id namespace.
  std::vector<BatchJob> more = {make_job("t", Priority::kNormal, 100.0)};
  EXPECT_EQ(ctl.serve(eng, more).request_ids[0], "req-s1-0");
}

TEST_F(AdmissionTest, EmptyStreamAndMalformedJobsPassThrough) {
  OptimizedEngine eng;
  AdmissionController ctl(permissive_config());
  const serve::ServeResult empty = ctl.serve(eng, {});
  EXPECT_TRUE(empty.results.empty());
  EXPECT_EQ(empty.stats.submitted, 0u);

  // A job naming no model bypasses admission so run_batch can tell its
  // own kInvalidArgument story (and it counts as admitted, not shed).
  BatchJob bad;
  bad.tenant = "t";
  const serve::ServeResult sr = ctl.serve(eng, {&bad, 1});
  EXPECT_EQ(sr.decisions[0].outcome, Decision::Outcome::kAdmitted);
  EXPECT_FALSE(sr.results[0].status.ok());
  EXPECT_EQ(sr.results[0].status.code(), rt::StatusCode::kInvalidArgument);
}

TEST_F(AdmissionTest, ResourceExhaustedClassifiesAsRetryable) {
  EXPECT_EQ(rt::classify_for_retry(rt::StatusCode::kResourceExhausted),
            rt::RetryClass::kRetryable)
      << "clients back off for the hint and resubmit";
}

// The §14 determinism contract: one overloaded two-tenant stream, served
// on fresh engine+controller at 1, 2 and 8 host threads — decisions,
// metrics document (overload block included) and journal must match byte
// for byte.
TEST_F(AdmissionTest, OverloadServeByteIdenticalAt1_2_8Threads) {
  struct Exports {
    std::string metrics;
    std::string journal;
    std::vector<Decision::Outcome> outcomes;
  };
  const auto run = [&]() {
    prof::MetricsSink& sink = prof::MetricsSink::instance();
    sink.clear();
    obs::EventJournal::instance().clear();
    obs::EventJournal::instance().set_enabled(true);
    sink.configure("admission_determinism", 0.02);
    sink.set_meta(prof::MetaInfo{.git_sha = "fixed",
                                 .timestamp = "2026-01-01T00:00:00Z",
                                 .hostname = "fixed",
                                 .scale_env = "",
                                 .threads = 0});
    OptimizedEngine eng;
    const double est = serve::estimate_job_cost(make_job("t", Priority::kNormal, 0.0));
    AdmissionConfig cfg = permissive_config();
    cfg.degrade_backlog_cycles = 1.0 * est;
    cfg.shed_low_backlog_cycles = 2.0 * est;
    cfg.shed_normal_backlog_cycles = 50.0 * est;
    cfg.wave_size = 3;
    AdmissionController ctl(cfg);
    std::vector<BatchJob> jobs;
    for (int i = 0; i < 12; ++i) {
      const bool burst = i % 3 != 0;
      jobs.push_back(make_job(burst ? "t-burst" : "t-steady",
                              burst ? Priority::kLow : Priority::kNormal,
                              0.25 * est * i, /*gat=*/i % 2 == 1));
    }
    const serve::ServeResult sr = ctl.serve(eng, jobs);
    Exports out;
    out.metrics = sink.to_json();
    out.journal = obs::EventJournal::instance().to_jsonl();
    for (const Decision& d : sr.decisions) out.outcomes.push_back(d.outcome);
    sink.clear();
    obs::EventJournal::instance().clear();
    return out;
  };
  par::set_max_threads(1);
  const Exports serial = run();
  EXPECT_NE(serial.metrics.find("\"overload\":{\"submitted\":12,"), std::string::npos)
      << serial.metrics;
  EXPECT_NE(serial.journal.find("\"type\":\"shed\""), std::string::npos)
      << "the stream must actually overload:\n" << serial.journal;
  for (int threads : {2, 8}) {
    par::set_max_threads(threads);
    const Exports parallel = run();
    EXPECT_EQ(parallel.metrics, serial.metrics) << "metrics at " << threads << " threads";
    EXPECT_EQ(parallel.journal, serial.journal) << "journal at " << threads << " threads";
    EXPECT_EQ(parallel.outcomes, serial.outcomes) << "decisions at " << threads << " threads";
  }
}

TEST_F(AdmissionTest, TelemetryCountersAndQueueWaitHistogram) {
  prof::MetricsSink::instance().clear();  // also clears the registry
  OptimizedEngine eng;
  const double est = serve::estimate_job_cost(make_job("t", Priority::kNormal, 0.0));
  AdmissionConfig cfg = permissive_config();
  cfg.shed_low_backlog_cycles = 0.5 * est;
  AdmissionController ctl(cfg);
  std::vector<BatchJob> jobs = {
      make_job("t", Priority::kNormal, 0.0),
      make_job("t", Priority::kNormal, 0.0),  // waits one service time
      make_job("t", Priority::kLow, 0.0),     // shed
  };
  (void)ctl.serve(eng, jobs);
  obs::TelemetryRegistry& reg = obs::TelemetryRegistry::instance();
  const obs::RegistrySnapshot snap = reg.snapshot();
  std::uint64_t submitted = 0, admitted = 0, shed = 0;
  double queue_peak = -1.0;
  for (const auto& [name, value] : snap.counters) {
    if (name == "serve.admission.submitted") submitted = value;
    if (name == "serve.admitted") admitted = value;
    if (name == "serve.shed") shed = value;
  }
  for (const auto& [name, value] : snap.gauges) {
    if (name == "serve.admission_queue_peak") queue_peak = value;
  }
  EXPECT_EQ(submitted, 3u);
  EXPECT_EQ(admitted, 2u);
  EXPECT_EQ(shed, 1u);
  EXPECT_GE(queue_peak, 1.0);
  const obs::HistogramSnapshot qw = reg.histogram_snapshot("serve.queue_wait_cycles");
  EXPECT_EQ(qw.count, 2u) << "one observation per admitted job";
  EXPECT_DOUBLE_EQ(qw.max, est / cfg.service_rate)
      << "the second job waits exactly one virtual service time";
}

}  // namespace
}  // namespace gnnbridge
