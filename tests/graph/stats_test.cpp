#include "graph/stats.hpp"

#include <gtest/gtest.h>

#include "tests/testing/util.hpp"

namespace gnnbridge::graph {
namespace {

TEST(DegreeStats, StarGraph) {
  const Csr g = testing::star_graph(11);  // node 0 has degree 10
  const DegreeStats s = degree_stats(g);
  EXPECT_EQ(s.num_nodes, 11);
  EXPECT_EQ(s.num_edges, 10);
  EXPECT_EQ(s.max_degree, 10);
  EXPECT_NEAR(s.avg_degree, 10.0 / 11.0, 1e-9);
  EXPECT_NEAR(s.density, 10.0 / 121.0, 1e-9);
}

TEST(DegreeStats, RegularGraphHasZeroVariance) {
  // A directed cycle: every node has in-degree exactly 1.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v < 6; ++v) edges.push_back({v, (v + 1) % 6});
  const Csr g = testing::csr_from_edges(6, std::move(edges));
  const DegreeStats s = degree_stats(g);
  EXPECT_NEAR(s.degree_variance, 0.0, 1e-9);
  EXPECT_EQ(s.max_degree, 1);
}

TEST(DegreeStats, EmptyGraph) {
  Csr g;
  g.num_nodes = 0;
  g.row_ptr = {0};
  const DegreeStats s = degree_stats(g);
  EXPECT_EQ(s.num_nodes, 0);
  EXPECT_EQ(s.num_edges, 0);
}

TEST(Jaccard, IdenticalSetsGiveOne) {
  const std::vector<NodeId> a{1, 2, 3};
  EXPECT_DOUBLE_EQ(jaccard(a, a), 1.0);
}

TEST(Jaccard, DisjointSetsGiveZero) {
  const std::vector<NodeId> a{1, 2};
  const std::vector<NodeId> b{3, 4};
  EXPECT_DOUBLE_EQ(jaccard(a, b), 0.0);
}

TEST(Jaccard, PartialOverlap) {
  const std::vector<NodeId> a{1, 2, 3};
  const std::vector<NodeId> b{2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(jaccard(a, b), 2.0 / 5.0);
}

TEST(Jaccard, EmptySets) {
  const std::vector<NodeId> a;
  EXPECT_DOUBLE_EQ(jaccard(a, a), 0.0);
}

TEST(SampledJaccard, HighForCliqueCommunities) {
  // Two disjoint 8-cliques: within-community neighbor sets overlap almost
  // fully, so sampled similarity should be well above a random graph's.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId base : {0, 8}) {
    for (NodeId i = 0; i < 8; ++i) {
      for (NodeId j = 0; j < 8; ++j) {
        if (i != j) edges.push_back({static_cast<NodeId>(base + i), static_cast<NodeId>(base + j)});
      }
    }
  }
  const Csr clique = testing::csr_from_edges(16, std::move(edges));
  const Csr random = testing::random_graph(16, 7.0, 3);
  tensor::Rng rng1(1), rng2(1);
  const double sim_clique = sampled_neighbor_jaccard(clique, 300, rng1);
  const double sim_random = sampled_neighbor_jaccard(random, 300, rng2);
  EXPECT_GT(sim_clique, sim_random);
  EXPECT_GT(sim_clique, 0.3);
}

}  // namespace
}  // namespace gnnbridge::graph
