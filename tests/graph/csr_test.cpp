#include "graph/csr.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "tests/testing/util.hpp"

namespace gnnbridge::graph {
namespace {

Coo small_coo() {
  // Figure 2 of the paper: edges (src -> dst)
  // 1->2, 1->3, 2->1, 2->3, 3->2, 3->3(self, dropped), 3->4, 4->3 on a
  // 5-node graph (0 unused).
  Coo g;
  g.num_nodes = 5;
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 1);
  g.add_edge(2, 3);
  g.add_edge(3, 2);
  g.add_edge(3, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 3);
  return canonicalize(g);
}

TEST(CsrFromCoo, RowsAreInNeighbors) {
  const Csr csr = csr_from_coo(small_coo());
  ASSERT_TRUE(valid(csr));
  EXPECT_EQ(csr.degree(0), 0);
  EXPECT_EQ(csr.degree(2), 2);  // 1->2, 3->2
  const auto n3 = csr.neighbors(3);
  ASSERT_EQ(n3.size(), 3u);  // 1, 2, 4 (self loop dropped)
  EXPECT_EQ(n3[0], 1);
  EXPECT_EQ(n3[1], 2);
  EXPECT_EQ(n3[2], 4);
}

TEST(CscFromCoo, RowsAreOutNeighbors) {
  const Csr csc = csc_from_coo(small_coo());
  ASSERT_TRUE(valid(csc));
  const auto out1 = csc.neighbors(1);
  ASSERT_EQ(out1.size(), 2u);  // 1->2, 1->3
  EXPECT_EQ(out1[0], 2);
  EXPECT_EQ(out1[1], 3);
}

TEST(CooFromCsr, RoundTrips) {
  const Coo original = small_coo();
  const Coo round = coo_from_csr(csr_from_coo(original));
  EXPECT_EQ(round.src, original.src);
  EXPECT_EQ(round.dst, original.dst);
}

TEST(CsrValid, CatchesBrokenRowPtr) {
  Csr g = csr_from_coo(small_coo());
  EXPECT_TRUE(valid(g));
  g.row_ptr[2] = g.row_ptr[3] + 1;
  EXPECT_FALSE(valid(g));
}

TEST(CsrValid, CatchesBadColumn) {
  Csr g = csr_from_coo(small_coo());
  g.col_idx[0] = 99;
  EXPECT_FALSE(valid(g));
}

TEST(PermuteRows, ReordersNeighborLists) {
  const Csr g = csr_from_coo(small_coo());
  std::vector<NodeId> perm = {4, 3, 2, 1, 0};
  const Csr p = permute_rows(g, perm);
  ASSERT_TRUE(valid(p));
  EXPECT_EQ(p.num_edges(), g.num_edges());
  for (NodeId r = 0; r < g.num_nodes; ++r) {
    const auto expect = g.neighbors(perm[static_cast<std::size_t>(r)]);
    const auto got = p.neighbors(r);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], expect[i]);
  }
}

TEST(PermuteRows, IdentityIsNoop) {
  const Csr g = testing::random_graph(50, 4.0, 99);
  std::vector<NodeId> perm(50);
  std::iota(perm.begin(), perm.end(), 0);
  const Csr p = permute_rows(g, perm);
  EXPECT_EQ(p.row_ptr, g.row_ptr);
  EXPECT_EQ(p.col_idx, g.col_idx);
}

TEST(Degrees, SumToEdgeCount) {
  const Csr g = testing::random_graph(100, 6.0, 5);
  EdgeId total = 0;
  for (NodeId v = 0; v < g.num_nodes; ++v) total += g.degree(v);
  EXPECT_EQ(total, g.num_edges());
}

}  // namespace
}  // namespace gnnbridge::graph
