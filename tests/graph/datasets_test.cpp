#include "graph/datasets.hpp"

#include <gtest/gtest.h>

namespace gnnbridge::graph {
namespace {

// Datasets are generated at a reduced scale in tests to keep runtime low;
// shape checks are scale-invariant (ratios, not absolutes).
constexpr double kScale = 0.25;

class AllDatasets : public ::testing::TestWithParam<DatasetId> {};

TEST_P(AllDatasets, StructurallyValid) {
  const Dataset d = make_dataset(GetParam(), kScale);
  EXPECT_TRUE(valid(d.coo));
  EXPECT_TRUE(valid(d.csr));
  EXPECT_TRUE(valid(d.csc));
  EXPECT_EQ(d.csr.num_edges(), d.coo.num_edges());
  EXPECT_GT(d.stats.num_edges, 0);
}

TEST_P(AllDatasets, SymmetricGraph) {
  const Dataset d = make_dataset(GetParam(), kScale);
  EXPECT_EQ(d.csr.row_ptr, d.csc.row_ptr);
  EXPECT_EQ(d.csr.col_idx, d.csc.col_idx);
}

TEST_P(AllDatasets, DeterministicAcrossCalls) {
  const Dataset a = make_dataset(GetParam(), kScale);
  const Dataset b = make_dataset(GetParam(), kScale);
  EXPECT_EQ(a.csr.col_idx, b.csr.col_idx);
  EXPECT_EQ(a.csr.row_ptr, b.csr.row_ptr);
}

TEST_P(AllDatasets, NameMatchesId) {
  const Dataset d = make_dataset(GetParam(), kScale);
  EXPECT_EQ(d.name, dataset_name(GetParam()));
}

TEST_P(AllDatasets, MaxOverAvgRatioRoughlyPreserved) {
  const Dataset d = make_dataset(GetParam(), kScale);
  const DegreeStats paper = paper_stats(GetParam());
  const double ours = static_cast<double>(d.stats.max_degree) / d.stats.avg_degree;
  const double theirs = static_cast<double>(paper.max_degree) / paper.avg_degree;
  // Within roughly an order of magnitude in both directions — the number driving
  // the imbalance experiments.
  EXPECT_GT(ours, theirs / 16.0) << d.name;
  EXPECT_LT(ours, theirs * 16.0) << d.name;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AllDatasets, ::testing::ValuesIn(kAllDatasets),
    [](const ::testing::TestParamInfo<DatasetId>& info) {
      return std::string(dataset_name(info.param));
    });

TEST(Datasets, DensityOrderingPreserved) {
  // ddi is by far the densest graph in Table 3; citation/products the
  // sparsest. The generated analogues must keep that ordering.
  const auto ddi = make_dataset(DatasetId::kDdi, kScale);
  const auto citation = make_dataset(DatasetId::kCitation, kScale);
  const auto protein = make_dataset(DatasetId::kProtein, kScale);
  EXPECT_GT(ddi.stats.density, 5.0 * protein.stats.density);
  EXPECT_GT(protein.stats.density, 10.0 * citation.stats.density);
}

TEST(Datasets, ClusteredGraphsHaveHigherNeighborOverlap) {
  const auto protein = make_dataset(DatasetId::kProtein, kScale);
  const auto collab = make_dataset(DatasetId::kCollab, kScale);
  tensor::Rng r1(5), r2(5);
  const double sim_protein = sampled_neighbor_jaccard(protein.csr, 400, r1);
  const double sim_collab = sampled_neighbor_jaccard(collab.csr, 400, r2);
  // The paper singles out protein/ddi as inherently clustered.
  EXPECT_GT(sim_protein, 3.0 * sim_collab + 1e-6);
}

TEST(Datasets, ArxivHasExtremeHubs) {
  const auto arxiv = make_dataset(DatasetId::kArxiv, kScale);
  const auto collab = make_dataset(DatasetId::kCollab, kScale);
  const double arxiv_ratio = static_cast<double>(arxiv.stats.max_degree) / arxiv.stats.avg_degree;
  const double collab_ratio =
      static_cast<double>(collab.stats.max_degree) / collab.stats.avg_degree;
  EXPECT_GT(arxiv_ratio, 3.0 * collab_ratio);
}

TEST(Datasets, AverageDegreeTracksRecipe) {
  const auto citation = make_dataset(DatasetId::kCitation, kScale);
  EXPECT_NEAR(citation.stats.avg_degree, 10.0, 4.0);
  const auto ddi = make_dataset(DatasetId::kDdi, kScale);
  EXPECT_GT(ddi.stats.avg_degree, 30.0);
}

TEST(Datasets, PaperStatsTranscribedFromTable3) {
  const DegreeStats reddit = paper_stats(DatasetId::kReddit);
  EXPECT_EQ(reddit.num_nodes, 232965);
  EXPECT_EQ(reddit.max_degree, 21657);
  const DegreeStats ddi = paper_stats(DatasetId::kDdi);
  EXPECT_NEAR(ddi.density, 0.12, 0.01);
}

TEST(Datasets, ScaleShrinksNodeCount) {
  const auto full = make_dataset(DatasetId::kCollab, 0.5);
  const auto half = make_dataset(DatasetId::kCollab, 0.25);
  EXPECT_GT(full.stats.num_nodes, half.stats.num_nodes);
}

}  // namespace
}  // namespace gnnbridge::graph
