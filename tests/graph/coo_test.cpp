#include "graph/coo.hpp"

#include <gtest/gtest.h>

namespace gnnbridge::graph {
namespace {

TEST(Coo, AddEdgeAppends) {
  Coo g;
  g.num_nodes = 3;
  g.add_edge(0, 1);
  g.add_edge(2, 1);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.src[1], 2);
  EXPECT_EQ(g.dst[1], 1);
}

TEST(Canonicalize, SortsByDstThenSrc) {
  Coo g;
  g.num_nodes = 4;
  g.add_edge(3, 0);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  Coo c = canonicalize(g);
  ASSERT_EQ(c.num_edges(), 3);
  EXPECT_EQ(c.dst[0], 0);
  EXPECT_EQ(c.dst[1], 2);
  EXPECT_EQ(c.src[1], 0);
  EXPECT_EQ(c.src[2], 1);
}

TEST(Canonicalize, RemovesDuplicates) {
  Coo g;
  g.num_nodes = 2;
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(canonicalize(g).num_edges(), 1);
}

TEST(Canonicalize, DropsSelfLoopsByDefault) {
  Coo g;
  g.num_nodes = 2;
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  EXPECT_EQ(canonicalize(g).num_edges(), 1);
  EXPECT_EQ(canonicalize(g, /*keep_self_loops=*/true).num_edges(), 2);
}

TEST(Symmetrize, AddsReverseEdges) {
  Coo g;
  g.num_nodes = 3;
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  Coo s = symmetrize(g);
  EXPECT_EQ(s.num_edges(), 4);
}

TEST(Symmetrize, IdempotentOnSymmetricInput) {
  Coo g;
  g.num_nodes = 2;
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  Coo s = symmetrize(g);
  EXPECT_EQ(s.num_edges(), 2);
  EXPECT_EQ(symmetrize(s).num_edges(), 2);
}

TEST(Valid, DetectsOutOfRange) {
  Coo g;
  g.num_nodes = 2;
  g.add_edge(0, 1);
  EXPECT_TRUE(valid(g));
  g.add_edge(0, 2);
  EXPECT_FALSE(valid(g));
}

TEST(Valid, DetectsLengthMismatch) {
  Coo g;
  g.num_nodes = 2;
  g.src.push_back(0);
  EXPECT_FALSE(valid(g));
}

}  // namespace
}  // namespace gnnbridge::graph
