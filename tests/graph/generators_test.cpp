#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/csr.hpp"
#include "graph/stats.hpp"

namespace gnnbridge::graph {
namespace {

using tensor::Rng;

TEST(DiscreteSampler, RespectsWeights) {
  const std::vector<double> w{1.0, 0.0, 3.0};
  DiscreteSampler s(w);
  Rng rng(1);
  std::array<int, 3> counts{};
  for (int i = 0; i < 40000; ++i) counts[s.sample(rng)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(DiscreteSampler, SingleElement) {
  const std::vector<double> w{2.5};
  DiscreteSampler s(w);
  Rng rng(2);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(s.sample(rng), 0u);
}

TEST(PowerLawDegrees, HitsTargetMean) {
  const auto d = power_law_degrees(10000, 12.0, 0.8, 2000.0);
  const double mean = std::accumulate(d.begin(), d.end(), 0.0) / 10000.0;
  EXPECT_NEAR(mean, 12.0, 0.2);
}

TEST(PowerLawDegrees, RespectsCapAndFloor) {
  const auto d = power_law_degrees(1000, 8.0, 1.2, 300.0);
  for (double x : d) {
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 300.0);
  }
  // Skewed: the first (heaviest) node should sit at or near the cap.
  EXPECT_GT(d.front(), 100.0);
}

TEST(PowerLawDegrees, MonotoneNonIncreasing) {
  const auto d = power_law_degrees(500, 5.0, 0.9, 100.0);
  for (std::size_t i = 1; i < d.size(); ++i) EXPECT_LE(d[i], d[i - 1] + 1e-9);
}

TEST(ChungLu, ProducesValidSymmetricGraph) {
  Rng rng(7);
  const auto degrees = power_law_degrees(2000, 10.0, 0.7, 400.0);
  const Coo coo = chung_lu(degrees, rng);
  ASSERT_TRUE(valid(coo));
  // Symmetric: in-CSR equals out-CSR.
  const Csr in = csr_from_coo(coo);
  const Csr out = csc_from_coo(coo);
  EXPECT_EQ(in.row_ptr, out.row_ptr);
  EXPECT_EQ(in.col_idx, out.col_idx);
}

TEST(ChungLu, SkewedDegreesRealized) {
  Rng rng(8);
  const auto degrees = power_law_degrees(4000, 10.0, 0.8, 800.0);
  const Csr csr = csr_from_coo(chung_lu(degrees, rng));
  const DegreeStats s = degree_stats(csr);
  // The heavy head should realize a degree far above the mean.
  EXPECT_GT(static_cast<double>(s.max_degree), 10.0 * s.avg_degree);
  EXPECT_NEAR(s.avg_degree, 10.0, 3.0);
}

TEST(ChungLu, DeterministicPerSeed) {
  const auto degrees = power_law_degrees(500, 6.0, 0.7, 100.0);
  Rng a(3), b(3);
  const Coo g1 = chung_lu(degrees, a);
  const Coo g2 = chung_lu(degrees, b);
  EXPECT_EQ(g1.src, g2.src);
  EXPECT_EQ(g1.dst, g2.dst);
}

TEST(PlantedPartition, CommunityEdgesDominate) {
  Rng rng(11);
  const NodeId n = 1024, comm = 64;
  const Coo coo = planted_partition(n, comm, 20.0, 0.9, rng);
  ASSERT_TRUE(valid(coo));
  EdgeId within = 0;
  for (EdgeId i = 0; i < coo.num_edges(); ++i) {
    if (coo.src[i] / comm == coo.dst[i] / comm) ++within;
  }
  EXPECT_GT(static_cast<double>(within) / static_cast<double>(coo.num_edges()), 0.75);
}

TEST(PlantedPartition, MeanDegreeNearTarget) {
  Rng rng(12);
  const Csr csr = csr_from_coo(planted_partition(2000, 100, 30.0, 0.8, rng));
  const DegreeStats s = degree_stats(csr);
  // Duplicate draws get merged, so realized mean is a bit below target.
  EXPECT_GT(s.avg_degree, 18.0);
  EXPECT_LT(s.avg_degree, 32.0);
}

TEST(ErdosRenyi, LowDegreeVariance) {
  Rng rng(13);
  const Csr csr = csr_from_coo(erdos_renyi(3000, 12.0, rng));
  const DegreeStats s = degree_stats(csr);
  // Poisson-ish: variance close to the mean, nothing like a power law.
  EXPECT_LT(s.degree_variance, 3.0 * s.avg_degree);
  EXPECT_NEAR(s.avg_degree, 12.0, 2.0);
}

}  // namespace
}  // namespace gnnbridge::graph
