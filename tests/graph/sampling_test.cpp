#include "graph/sampling.hpp"

#include <gtest/gtest.h>

#include <set>

#include "tests/testing/util.hpp"

namespace gnnbridge::graph {
namespace {

TEST(SampleBatchCenters, DistinctSortedInRange) {
  tensor::Rng rng(1);
  const auto centers = sample_batch_centers(100, 20, rng);
  ASSERT_EQ(centers.size(), 20u);
  for (std::size_t i = 1; i < centers.size(); ++i) EXPECT_LT(centers[i - 1], centers[i]);
  for (NodeId v : centers) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(SampleBatchCenters, ClampsToNodeCount) {
  tensor::Rng rng(2);
  EXPECT_EQ(sample_batch_centers(5, 20, rng).size(), 5u);
}

TEST(SampleNeighbors, FanoutRespected) {
  const Csr g = testing::star_graph(50);  // node 0: degree 49
  tensor::Rng rng(3);
  const NodeId centers[] = {0};
  const SampledBatch b = sample_neighbors(g, centers, 8, rng);
  EXPECT_EQ(b.csr.num_nodes, 1);
  EXPECT_EQ(b.csr.degree(0), 8);
}

TEST(SampleNeighbors, LowDegreeNodesKeepAllNeighbors) {
  const Csr g = testing::path_graph(10);  // degree <= 1
  tensor::Rng rng(4);
  const NodeId centers[] = {0, 3, 9};
  const SampledBatch b = sample_neighbors(g, centers, 5, rng);
  EXPECT_EQ(b.csr.degree(0), 1);
  EXPECT_EQ(b.csr.degree(2), 0);  // node 9 has no in-neighbors
}

TEST(SampleNeighbors, SamplesWithoutReplacementFromTrueNeighbors) {
  const Csr g = testing::random_graph(60, 12.0, 5);
  tensor::Rng rng(6);
  const auto centers = sample_batch_centers(60, 30, rng);
  const SampledBatch b = sample_neighbors(g, centers, 4, rng);
  ASSERT_TRUE(valid(b.csr) || b.csr.num_nodes == 30);  // cols index the FULL graph
  for (NodeId i = 0; i < b.csr.num_nodes; ++i) {
    const NodeId center = b.centers[static_cast<std::size_t>(i)];
    const auto true_nbrs = g.neighbors(center);
    std::set<NodeId> seen;
    for (NodeId u : b.csr.neighbors(i)) {
      EXPECT_TRUE(std::binary_search(true_nbrs.begin(), true_nbrs.end(), u));
      EXPECT_TRUE(seen.insert(u).second) << "duplicate sample";
    }
  }
}

TEST(SampleNeighbors, DifferentSeedsDifferentBatches) {
  const Csr g = testing::random_graph(80, 20.0, 7);
  tensor::Rng a(8), b(9);
  const auto centers = sample_batch_centers(80, 40, a);
  const SampledBatch sa = sample_neighbors(g, centers, 4, a);
  const SampledBatch sb = sample_neighbors(g, centers, 4, b);
  EXPECT_NE(sa.csr.col_idx, sb.csr.col_idx);
}

TEST(SampleNeighbors, DeterministicPerSeed) {
  const Csr g = testing::random_graph(80, 20.0, 10);
  tensor::Rng a(11), b(11);
  const auto ca = sample_batch_centers(80, 40, a);
  const auto cb = sample_batch_centers(80, 40, b);
  EXPECT_EQ(ca, cb);
  EXPECT_EQ(sample_neighbors(g, ca, 4, a).csr.col_idx,
            sample_neighbors(g, cb, 4, b).csr.col_idx);
}

}  // namespace
}  // namespace gnnbridge::graph
