#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "tests/testing/util.hpp"

namespace gnnbridge::graph {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(GraphIo, CsrRoundTrip) {
  const Csr g = gnnbridge::testing::random_graph(100, 6.0, 1);
  const std::string path = temp_path("g.csr");
  ASSERT_TRUE(save_csr(g, path));
  Csr loaded;
  ASSERT_TRUE(load_csr(loaded, path));
  EXPECT_EQ(loaded.num_nodes, g.num_nodes);
  EXPECT_EQ(loaded.row_ptr, g.row_ptr);
  EXPECT_EQ(loaded.col_idx, g.col_idx);
  std::remove(path.c_str());
}

TEST(GraphIo, LoadRejectsMissingFile) {
  Csr g;
  EXPECT_FALSE(load_csr(g, temp_path("nonexistent.csr")));
}

TEST(GraphIo, LoadRejectsBadMagic) {
  const std::string path = temp_path("bad.csr");
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a graph";
  }
  Csr g;
  EXPECT_FALSE(load_csr(g, path));
  std::remove(path.c_str());
}

TEST(GraphIo, LoadRejectsCorruptStructure) {
  Csr g = gnnbridge::testing::random_graph(20, 3.0, 2);
  g.col_idx[0] = 99;  // out of range — must fail validity check on load
  const std::string path = temp_path("corrupt.csr");
  ASSERT_TRUE(save_csr(g, path));
  Csr loaded;
  EXPECT_FALSE(load_csr(loaded, path));
  std::remove(path.c_str());
}

TEST(GraphIo, MatrixRoundTrip) {
  const tensor::Matrix m = gnnbridge::testing::random_matrix(17, 9, 3);
  const std::string path = temp_path("m.mat");
  ASSERT_TRUE(save_matrix(m, path));
  tensor::Matrix loaded;
  ASSERT_TRUE(load_matrix(loaded, path));
  EXPECT_EQ(loaded, m);
  std::remove(path.c_str());
}

TEST(GraphIo, EdgeListParsing) {
  std::istringstream in("# comment\n0 1\n1 2\n% another comment\n2 0\n");
  Coo coo;
  ASSERT_TRUE(read_edge_list(in, coo));
  EXPECT_EQ(coo.num_nodes, 3);
  EXPECT_EQ(coo.num_edges(), 3);
  EXPECT_EQ(coo.src[2], 2);
  EXPECT_EQ(coo.dst[2], 0);
}

TEST(GraphIo, EdgeListRejectsGarbage) {
  std::istringstream in("0 1\nnot numbers\n");
  Coo coo;
  EXPECT_FALSE(read_edge_list(in, coo));
}

TEST(GraphIo, EdgeListRejectsNegativeIds) {
  std::istringstream in("0 -1\n");
  Coo coo;
  EXPECT_FALSE(read_edge_list(in, coo));
}

}  // namespace
}  // namespace gnnbridge::graph
