#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "rt/status.hpp"
#include "tests/testing/util.hpp"

namespace gnnbridge::graph {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// A recognizable graph used to prove failed loads leave the output alone.
Csr sentinel_graph() {
  Csr g;
  g.num_nodes = 2;
  g.row_ptr = {0, 1, 2};
  g.col_idx = {1, 0};
  return g;
}

TEST(GraphIo, CsrRoundTrip) {
  const Csr g = gnnbridge::testing::random_graph(100, 6.0, 1);
  const std::string path = temp_path("g.csr");
  ASSERT_TRUE(save_csr(g, path));
  Csr loaded;
  ASSERT_TRUE(load_csr(loaded, path));
  EXPECT_EQ(loaded.num_nodes, g.num_nodes);
  EXPECT_EQ(loaded.row_ptr, g.row_ptr);
  EXPECT_EQ(loaded.col_idx, g.col_idx);
  std::remove(path.c_str());
}

TEST(GraphIo, LoadRejectsMissingFile) {
  Csr g;
  EXPECT_FALSE(load_csr(g, temp_path("nonexistent.csr")));
}

TEST(GraphIo, LoadRejectsBadMagic) {
  const std::string path = temp_path("bad.csr");
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a graph";
  }
  Csr g;
  EXPECT_FALSE(load_csr(g, path));
  std::remove(path.c_str());
}

TEST(GraphIo, LoadRejectsCorruptStructure) {
  Csr g = gnnbridge::testing::random_graph(20, 3.0, 2);
  g.col_idx[0] = 99;  // out of range — must fail validity check on load
  const std::string path = temp_path("corrupt.csr");
  ASSERT_TRUE(save_csr(g, path));
  Csr loaded;
  EXPECT_FALSE(load_csr(loaded, path));
  std::remove(path.c_str());
}

TEST(GraphIo, LoadReportsMissingFileAsNotFound) {
  Csr g;
  const rt::Status s = load_csr(g, temp_path("nonexistent.csr"));
  EXPECT_EQ(s.code(), rt::StatusCode::kNotFound);
  ASSERT_FALSE(s.context().empty());
  EXPECT_NE(s.context()[0].find("load_csr"), std::string::npos);
}

TEST(GraphIo, LoadRejectsBadVersion) {
  const std::string path = temp_path("badver.csr");
  ASSERT_TRUE(save_csr(gnnbridge::testing::random_graph(10, 3.0, 4), path));
  std::string bytes = slurp(path);
  bytes[4] = 99;  // version field follows the 4-byte magic
  spit(path, bytes);
  Csr loaded;
  const rt::Status s = load_csr(loaded, path);
  EXPECT_EQ(s.code(), rt::StatusCode::kDataLoss);
  EXPECT_NE(s.message().find("version"), std::string::npos);
  std::remove(path.c_str());
}

TEST(GraphIo, LoadRejectsTruncatedPayload) {
  const std::string path = temp_path("trunc.csr");
  ASSERT_TRUE(save_csr(gnnbridge::testing::random_graph(50, 4.0, 5), path));
  const std::string bytes = slurp(path);
  spit(path, bytes.substr(0, bytes.size() - 8));
  Csr loaded = sentinel_graph();
  const rt::Status s = load_csr(loaded, path);
  EXPECT_EQ(s.code(), rt::StatusCode::kDataLoss);
  EXPECT_NE(s.message().find("truncated"), std::string::npos);
  // The output graph must be untouched by the failed load.
  EXPECT_EQ(loaded.num_nodes, 2);
  EXPECT_EQ(loaded.row_ptr, sentinel_graph().row_ptr);
  EXPECT_EQ(loaded.col_idx, sentinel_graph().col_idx);
  std::remove(path.c_str());
}

TEST(GraphIo, LoadRejectsLyingVectorLength) {
  // Hand-build a header whose row_ptr declares far more entries than the
  // file holds: the 1 GiB sanity bound must refuse before allocating.
  const std::string path = temp_path("lying.csr");
  {
    std::ofstream out(path, std::ios::binary);
    const std::uint32_t magic = 0x47425243, version = 1;
    const std::int32_t num_nodes = 4;
    const std::uint64_t bogus_len = 1ull << 40;
    out.write(reinterpret_cast<const char*>(&magic), 4);
    out.write(reinterpret_cast<const char*>(&version), 4);
    out.write(reinterpret_cast<const char*>(&num_nodes), 4);
    out.write(reinterpret_cast<const char*>(&bogus_len), 8);
  }
  Csr loaded;
  const rt::Status s = load_csr(loaded, path);
  EXPECT_EQ(s.code(), rt::StatusCode::kDataLoss);
  EXPECT_NE(s.message().find("sanity bound"), std::string::npos);
  std::remove(path.c_str());
}

TEST(GraphIo, MatrixRoundTrip) {
  const tensor::Matrix m = gnnbridge::testing::random_matrix(17, 9, 3);
  const std::string path = temp_path("m.mat");
  ASSERT_TRUE(save_matrix(m, path));
  tensor::Matrix loaded;
  ASSERT_TRUE(load_matrix(loaded, path));
  EXPECT_EQ(loaded, m);
  std::remove(path.c_str());
}

TEST(GraphIo, LoadMatrixRejectsOverflowingHeader) {
  // rows*cols would wrap a 64-bit product; the loader's division-based
  // bound check must reject the header rather than allocate garbage.
  const std::string path = temp_path("overflow.mat");
  {
    std::ofstream out(path, std::ios::binary);
    const std::uint32_t magic = 0x4742544D, version = 1;
    const std::int64_t rows = 1ll << 62, cols = 8;
    out.write(reinterpret_cast<const char*>(&magic), 4);
    out.write(reinterpret_cast<const char*>(&version), 4);
    out.write(reinterpret_cast<const char*>(&rows), 8);
    out.write(reinterpret_cast<const char*>(&cols), 8);
  }
  tensor::Matrix loaded;
  const rt::Status s = load_matrix(loaded, path);
  EXPECT_EQ(s.code(), rt::StatusCode::kDataLoss);
  EXPECT_NE(s.message().find("outside the sane range"), std::string::npos);
  EXPECT_EQ(loaded.size(), 0);
  std::remove(path.c_str());
}

TEST(GraphIo, LoadMatrixRejectsNegativeDims) {
  const std::string path = temp_path("negdim.mat");
  {
    std::ofstream out(path, std::ios::binary);
    const std::uint32_t magic = 0x4742544D, version = 1;
    const std::int64_t rows = -4, cols = 4;
    out.write(reinterpret_cast<const char*>(&magic), 4);
    out.write(reinterpret_cast<const char*>(&version), 4);
    out.write(reinterpret_cast<const char*>(&rows), 8);
    out.write(reinterpret_cast<const char*>(&cols), 8);
  }
  tensor::Matrix loaded;
  EXPECT_EQ(load_matrix(loaded, path).code(), rt::StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(GraphIo, LoadMatrixRejectsTruncatedPayload) {
  const std::string path = temp_path("trunc.mat");
  ASSERT_TRUE(save_matrix(gnnbridge::testing::random_matrix(8, 8, 6), path));
  const std::string bytes = slurp(path);
  spit(path, bytes.substr(0, bytes.size() - 16));
  tensor::Matrix loaded(1, 1);
  loaded(0, 0) = 42.0f;
  const rt::Status s = load_matrix(loaded, path);
  EXPECT_EQ(s.code(), rt::StatusCode::kDataLoss);
  EXPECT_NE(s.message().find("truncated"), std::string::npos);
  // The output matrix must be untouched by the failed load.
  ASSERT_EQ(loaded.rows(), 1);
  EXPECT_EQ(loaded(0, 0), 42.0f);
  std::remove(path.c_str());
}

TEST(GraphIo, EdgeListParsing) {
  std::istringstream in("# comment\n0 1\n1 2\n% another comment\n2 0\n");
  Coo coo;
  ASSERT_TRUE(read_edge_list(in, coo));
  EXPECT_EQ(coo.num_nodes, 3);
  EXPECT_EQ(coo.num_edges(), 3);
  EXPECT_EQ(coo.src[2], 2);
  EXPECT_EQ(coo.dst[2], 0);
}

TEST(GraphIo, EdgeListRejectsGarbageWithLineNumber) {
  std::istringstream in("0 1\n# comment lines still count\nnot numbers\n");
  Coo coo;
  const rt::Status s = read_edge_list(in, coo);
  EXPECT_EQ(s.code(), rt::StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("line 3"), std::string::npos);
  EXPECT_NE(s.message().find("'not'"), std::string::npos);
}

TEST(GraphIo, EdgeListRejectsNegativeIds) {
  std::istringstream in("0 -1\n");
  Coo coo;
  const rt::Status s = read_edge_list(in, coo);
  EXPECT_EQ(s.code(), rt::StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("negative node id"), std::string::npos);
}

TEST(GraphIo, EdgeListRejectsOverflowingIds) {
  // 2^40 does not fit NodeId (int32); must be OUT_OF_RANGE, not a wrap.
  std::istringstream in("0 1099511627776\n");
  Coo coo;
  const rt::Status s = read_edge_list(in, coo);
  EXPECT_EQ(s.code(), rt::StatusCode::kOutOfRange);
  EXPECT_NE(s.message().find("overflows NodeId"), std::string::npos);
}

TEST(GraphIo, EdgeListRejectsMissingToken) {
  std::istringstream in("0 1\n5\n");
  Coo coo;
  const rt::Status s = read_edge_list(in, coo);
  EXPECT_EQ(s.code(), rt::StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("line 2"), std::string::npos);
  EXPECT_NE(s.message().find("expected 'src dst'"), std::string::npos);
}

TEST(GraphIo, EdgeListNoPartialMutationOnFailure) {
  Coo coo;
  coo.add_edge(7, 8);
  coo.num_nodes = 9;
  std::istringstream in("0 1\n1 2\nbroken line here\n");
  ASSERT_FALSE(read_edge_list(in, coo));
  // The two good edges parsed before the error must not leak out.
  EXPECT_EQ(coo.num_edges(), 1);
  EXPECT_EQ(coo.num_nodes, 9);
  EXPECT_EQ(coo.src[0], 7);
  EXPECT_EQ(coo.dst[0], 8);
}

}  // namespace
}  // namespace gnnbridge::graph
