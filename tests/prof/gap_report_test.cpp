// Gap-attribution profiler tests: golden attribution numbers for a
// hand-built run (locking the acceptance numbers the paper-gap tables are
// derived from), comparison math, and the serialize -> load_metrics_file ->
// re-attribute round trip that `gnnbridge_cli analyze/compare` rely on.
#include "prof/gap_report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "prof/json_reader.hpp"
#include "prof/metrics_json.hpp"
#include "sim/counters.hpp"
#include "sim/device.hpp"

namespace gnnbridge::prof {
namespace {

// Mirrors the golden record in metrics_json_test.cpp: every quantity is a
// power of two (or exactly representable), so attribution is exact.
RunRecord golden_record() {
  sim::KernelStats k;
  k.name = "spmm_node";
  k.phase = "aggregation";
  k.num_blocks = 3;
  k.l2_hits = 6;
  k.l2_misses = 2;
  k.dram_bytes = 128;
  k.flops = 2147483648.0;         // 2^31
  k.issued_flops = 2147485440.0;  // flops + pad + copy + tile
  k.cycles = 2.0e9;
  k.makespan = 1.6e9;
  k.balanced = 8.0e8;
  k.atomic_cycles = 256.0;
  k.atomic_bytes = 64;
  k.adapter_cycles = 128.0;
  k.adapter_bytes = 32;
  k.pad_flops = 1024.0;
  k.copy_flops = 512.0;
  k.tile_flops = 256.0;

  sim::RunStats stats;
  stats.kernels.push_back(k);
  stats.total_cycles = 2.0e9;
  stats.global_syncs = 1;

  sim::DeviceSpec spec;
  spec.num_sms = 2;
  spec.max_blocks_per_sm = 4;  // 8 slots
  spec.clock_ghz = 2.0;
  spec.l2_bytes = 1 << 20;
  spec.line_bytes = 64;

  return RunRecord{.label = "gcn/ours/collab",
                   .model = "gcn",
                   .backend = "ours",
                   .dataset = "collab",
                   .ms = 1.5,
                   .oom = false,
                   .stats = stats,
                   .spec = spec};
}

TEST(GapReportTest, GoldenAttributionNumbers) {
  const RunRecord rec = golden_record();
  const GapBreakdown g = attribute_gaps(rec);
  EXPECT_EQ(g.label, "gcn/ours/collab");
  EXPECT_EQ(g.backend, "ours");
  EXPECT_DOUBLE_EQ(g.total_cycles, 2.0e9);
  // locality: 2 misses x (63 - 22) / 8 slots = 10.25.
  EXPECT_DOUBLE_EQ(g.locality_cycles, 10.25);
  EXPECT_EQ(g.dram_bytes, 128u);
  EXPECT_DOUBLE_EQ(g.l2_hit_rate, 0.75);
  // imbalance: makespan - balanced.
  EXPECT_DOUBLE_EQ(g.imbalance_cycles, 8.0e8);
  EXPECT_DOUBLE_EQ(g.imbalance_ratio, 2.0);
  // launch overhead: cycles - makespan.
  EXPECT_DOUBLE_EQ(g.launch_cycles, 4.0e8);
  EXPECT_EQ(g.launches, 1);
  // synchronization: atomic + adapter cycles.
  EXPECT_DOUBLE_EQ(g.sync_cycles, 384.0);
  EXPECT_EQ(g.global_syncs, 1u);
  EXPECT_EQ(g.atomic_bytes, 64u);
  EXPECT_EQ(g.adapter_bytes, 32u);
  // redundancy: (1024 + 512 + 256) / 16 flops-per-cycle = 112.
  EXPECT_DOUBLE_EQ(g.redundancy_cycles, 112.0);
  EXPECT_DOUBLE_EQ(g.redundant_flops, 1792.0);
  EXPECT_DOUBLE_EQ(g.attributed_cycles(), 1200000506.25);
}

TEST(GapReportTest, EmptyRunAttributesNothing) {
  sim::RunStats stats;
  const GapBreakdown g = attribute_gaps(stats, sim::v100());
  EXPECT_DOUBLE_EQ(g.attributed_cycles(), 0.0);
  EXPECT_DOUBLE_EQ(g.imbalance_ratio, 1.0);
  EXPECT_EQ(g.launches, 0);
}

TEST(GapReportTest, CompareOrdersTheSixGapsAndComputesRecovery) {
  GapBreakdown base = attribute_gaps(golden_record());
  GapBreakdown opt = base;
  opt.locality_cycles = 0.25;
  opt.imbalance_cycles = 2.0e8;
  opt.launch_cycles = 1.0e8;
  opt.sync_cycles = 96.0;
  opt.redundancy_cycles = 28.0;
  opt.total_cycles = 1.0e9;
  const GapComparison c = compare_gaps(base, opt);
  ASSERT_EQ(c.gaps.size(), 6u);
  EXPECT_EQ(c.gaps[0].gap, "locality");
  EXPECT_EQ(c.gaps[1].gap, "imbalance");
  EXPECT_EQ(c.gaps[2].gap, "launch_overhead");
  EXPECT_EQ(c.gaps[3].gap, "synchronization");
  EXPECT_EQ(c.gaps[4].gap, "redundancy");
  EXPECT_EQ(c.gaps[5].gap, "inter_shard_traffic");
  EXPECT_DOUBLE_EQ(c.gaps[0].recovered(), 10.0);
  EXPECT_DOUBLE_EQ(c.gaps[1].recovered(), 6.0e8);
  EXPECT_DOUBLE_EQ(c.gaps[1].recovered_frac(), 0.75);
  EXPECT_DOUBLE_EQ(c.gaps[3].recovered(), 288.0);
  EXPECT_DOUBLE_EQ(c.gaps[4].recovered(), 84.0);
  EXPECT_DOUBLE_EQ(c.gaps[5].recovered(), 0.0);  // unsharded golden record
  EXPECT_DOUBLE_EQ(c.total.recovered(), 1.0e9);
  EXPECT_DOUBLE_EQ(c.speedup(), 2.0);
}

TEST(GapReportTest, RecoveredFracZeroBaselineIsZeroNotNan) {
  GapDelta d{"locality", 0.0, 0.0};
  EXPECT_DOUBLE_EQ(d.recovered_frac(), 0.0);
}

TEST(GapReportTest, RenderedTablesNameEveryGap) {
  const GapBreakdown g = attribute_gaps(golden_record());
  const std::string table = render_gap_table(g);
  for (const char* gap :
       {"locality", "imbalance", "launch overhead", "synchronization", "redundancy",
        "inter-shard"}) {
    EXPECT_NE(table.find(gap), std::string::npos) << gap << "\n" << table;
  }
  const std::string cmp = render_compare_table(compare_gaps(g, g));
  EXPECT_NE(cmp.find("speedup"), std::string::npos);
  EXPECT_NE(cmp.find("recovered"), std::string::npos);
}

TEST(GapReportTest, SerializedDocumentRoundTripsThroughLoader) {
  MetricsSink& sink = MetricsSink::instance();
  sink.clear();
  sink.configure("roundtrip", 0.25);
  sink.set_meta(MetaInfo{.git_sha = "deadbee",
                         .timestamp = "2026-01-01T00:00:00Z",
                         .hostname = "goldenhost",
                         .scale_env = "0.25"});
  sink.record(golden_record());
  const std::string path = ::testing::TempDir() + "/gap_roundtrip_metrics.json";
  ASSERT_TRUE(sink.write_file(path).ok());
  sink.clear();

  auto loaded = load_metrics_file(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded->schema_version, kMetricsSchemaVersion);
  EXPECT_EQ(loaded->experiment, "roundtrip");
  ASSERT_EQ(loaded->runs.size(), 1u);

  // All golden quantities are exactly representable, so re-attribution on
  // the loaded record reproduces attribute_gaps on the original exactly.
  const GapBreakdown direct = attribute_gaps(golden_record());
  const GapBreakdown reloaded = attribute_gaps(loaded->runs[0]);
  EXPECT_EQ(reloaded.label, direct.label);
  EXPECT_DOUBLE_EQ(reloaded.total_cycles, direct.total_cycles);
  EXPECT_DOUBLE_EQ(reloaded.locality_cycles, direct.locality_cycles);
  EXPECT_DOUBLE_EQ(reloaded.imbalance_cycles, direct.imbalance_cycles);
  EXPECT_DOUBLE_EQ(reloaded.launch_cycles, direct.launch_cycles);
  EXPECT_DOUBLE_EQ(reloaded.sync_cycles, direct.sync_cycles);
  EXPECT_DOUBLE_EQ(reloaded.redundancy_cycles, direct.redundancy_cycles);
  EXPECT_EQ(reloaded.atomic_bytes, direct.atomic_bytes);
  EXPECT_EQ(reloaded.adapter_bytes, direct.adapter_bytes);
  EXPECT_EQ(reloaded.global_syncs, direct.global_syncs);
  std::remove(path.c_str());
}

TEST(GapReportTest, LoaderAcceptsSchemaV2Documents) {
  // A v2 document: no meta, no gap counters. The loader zero-defaults the
  // new fields and counts one global sync per kernel.
  const std::string doc =
      "{\"schema\":\"gnnbridge-metrics\",\"schema_version\":2,"
      "\"experiment\":\"legacy\",\"scale\":1,\"runs\":["
      "{\"label\":\"gcn/dgl/collab\",\"model\":\"gcn\",\"backend\":\"dgl\","
      "\"dataset\":\"collab\",\"ms\":2,\"oom\":false,"
      "\"device\":{\"num_sms\":2,\"max_blocks_per_sm\":4,\"clock_ghz\":2,"
      "\"l2_bytes\":1048576,\"line_bytes\":64},"
      "\"totals\":{\"cycles\":1000,\"launches\":2},"
      "\"kernels\":[{\"name\":\"a\",\"cycles\":600,\"makespan\":500,"
      "\"balanced\":400,\"l2_misses\":8},"
      "{\"name\":\"b\",\"cycles\":400,\"makespan\":300,\"balanced\":300}]}],"
      "\"degradations\":[]}\n";
  const std::string path = ::testing::TempDir() + "/gap_v2_metrics.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);

  auto loaded = load_metrics_file(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded->schema_version, 2);
  ASSERT_EQ(loaded->runs.size(), 1u);
  const GapBreakdown g = attribute_gaps(loaded->runs[0]);
  EXPECT_DOUBLE_EQ(g.sync_cycles, 0.0);      // v2 has no atomic/adapter counters
  EXPECT_EQ(g.global_syncs, 2u);             // one per kernel
  EXPECT_DOUBLE_EQ(g.imbalance_cycles, 100.0);
  EXPECT_DOUBLE_EQ(g.launch_cycles, 200.0);
  EXPECT_DOUBLE_EQ(g.locality_cycles, 8.0 * (63.0 - 22.0) / 8.0);
  std::remove(path.c_str());
}

TEST(GapReportTest, LoaderRejectsWrongSchemaAndMissingFile) {
  const std::string path = ::testing::TempDir() + "/gap_bad_metrics.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  const std::string doc = "{\"schema\":\"something-else\",\"schema_version\":3}";
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  EXPECT_EQ(load_metrics_file(path).status().code(), rt::StatusCode::kDataLoss);
  std::remove(path.c_str());
  EXPECT_EQ(load_metrics_file("/no/such/dir/metrics.json").status().code(),
            rt::StatusCode::kNotFound);
}

TEST(JsonReaderTest, ParsesScalarsArraysAndNestedObjects) {
  auto r = parse_json(
      R"({"a":1.5,"b":"x\"y\\z","c":[1,2,3],"d":{"e":true,"f":null},"neg":-8})");
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  const JsonValue& v = *r;
  EXPECT_DOUBLE_EQ(v.num_or("a", 0.0), 1.5);
  EXPECT_EQ(v.str_or("b", ""), "x\"y\\z");
  const JsonValue* c = v.find("c");
  ASSERT_NE(c, nullptr);
  ASSERT_TRUE(c->is_array());
  ASSERT_EQ(c->items.size(), 3u);
  EXPECT_DOUBLE_EQ(c->items[2].number_value, 3.0);
  const JsonValue* d = v.find("d");
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->bool_or("e", false));
  EXPECT_EQ(d->find("f")->kind, JsonValue::Kind::kNull);
  EXPECT_EQ(v.int_or("neg", 0), -8);
}

TEST(JsonReaderTest, TypedGettersFallBackOnMissingOrMistyped) {
  auto r = parse_json(R"({"s":"text","n":4})");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->num_or("s", 7.5), 7.5);    // mistyped
  EXPECT_DOUBLE_EQ(r->num_or("missing", 2.5), 2.5);
  EXPECT_EQ(r->str_or("n", "dflt"), "dflt");
  EXPECT_EQ(r->uint_or("n", 0), 4u);
}

TEST(JsonReaderTest, NegativeNumberNeverBecomesHugeUnsigned) {
  auto r = parse_json(R"({"n":-5})");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->uint_or("n", 9), 9u);  // falls back rather than wrapping
}

TEST(JsonReaderTest, MalformedDocumentsReportDataLoss) {
  for (const char* bad : {"{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "{}extra"}) {
    auto r = parse_json(bad);
    EXPECT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.status().code(), rt::StatusCode::kDataLoss) << bad;
  }
}

TEST(JsonReaderTest, DepthLimitStopsRunawayNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  auto r = parse_json(deep);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), rt::StatusCode::kDataLoss);
}

TEST(JsonReaderTest, UnicodeEscapesDecodeToUtf8) {
  auto r = parse_json(R"({"s":"\u00e9A"})");
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r->str_or("s", ""), "\xc3\xa9""A");
}

}  // namespace
}  // namespace gnnbridge::prof
