// Crash-safe artifact writes (serving resilience, DESIGN.md §12):
// MetricsSink::write_file and write_chrome_trace_file stage the whole
// document in a sibling ".tmp" file and rename it into place, so a process
// killed mid-write never truncates a previously written artifact. The
// kill is simulated with a real fork(): the child dies after writing
// partial garbage to the temp file, exactly where a crash would land.
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "prof/chrome_trace.hpp"
#include "prof/metrics_json.hpp"
#include "prof/tracer.hpp"
#include "rt/status.hpp"

namespace gnnbridge::prof {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool file_exists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return in.good();
}

// Forks; the child writes `garbage` to `path` and dies without renaming —
// a crash between the temp-file write and the rename. Returns once the
// child is reaped.
void crash_while_writing(const std::string& path, const std::string& garbage) {
  const pid_t pid = fork();
  ASSERT_NE(pid, -1) << "fork failed";
  if (pid == 0) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f) {
      std::fwrite(garbage.data(), 1, garbage.size(), f);
      std::fflush(f);
    }
    _exit(0);  // no atexit hooks, no gtest teardown: die like a crash
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
}

MetricsSink& pinned_sink() {
  MetricsSink& sink = MetricsSink::instance();
  sink.clear();
  sink.configure("artifact_write_test", 0.05);
  sink.set_meta(MetaInfo{.git_sha = "fixed",
                         .timestamp = "2026-01-01T00:00:00Z",
                         .hostname = "fixed",
                         .scale_env = "",
                         .threads = 0});
  return sink;
}

TEST(ArtifactWriteTest, MetricsSurviveAKillMidWrite) {
  MetricsSink& sink = pinned_sink();
  const std::string path = ::testing::TempDir() + "artifact_metrics.json";
  ASSERT_TRUE(sink.write_file(path).ok());
  const std::string good = read_file(path);
  ASSERT_FALSE(good.empty());

  // The writer dies after staging half a document in the temp file. The
  // target must still hold the previous complete document.
  crash_while_writing(path + ".tmp", "{\"schema\": \"gnnbridge-metr");
  EXPECT_EQ(read_file(path), good) << "kill mid-write corrupted the target";

  // The next write replaces the stale temp file and the target atomically.
  ASSERT_TRUE(sink.write_file(path).ok());
  EXPECT_EQ(read_file(path), good);  // meta is pinned: byte-stable rewrite
  EXPECT_FALSE(file_exists(path + ".tmp"));
  sink.clear();
}

TEST(ArtifactWriteTest, SuccessfulMetricsWriteLeavesNoTempFile) {
  MetricsSink& sink = pinned_sink();
  const std::string path = ::testing::TempDir() + "artifact_metrics_clean.json";
  ASSERT_TRUE(sink.write_file(path).ok());
  EXPECT_TRUE(file_exists(path));
  EXPECT_FALSE(file_exists(path + ".tmp"));
  sink.clear();
}

TEST(ArtifactWriteTest, MetricsWriteFailureCarriesThePath) {
  MetricsSink& sink = pinned_sink();
  const std::string path = ::testing::TempDir() + "no_such_dir/metrics.json";
  const rt::Status status = sink.write_file(path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), rt::StatusCode::kUnavailable);
  ASSERT_FALSE(status.context().empty());
  EXPECT_NE(status.context().back().find(path), std::string::npos)
      << "context frame must name the target path: " << status.to_string();
  EXPECT_FALSE(file_exists(path));
  sink.clear();
}

std::vector<SpanRecord> sample_spans() {
  SpanRecord span;
  span.name = "run_gcn";
  span.category = "engine";
  span.start_us = 10;
  span.duration_us = 250;
  return {span};
}

TEST(ArtifactWriteTest, ChromeTraceSurvivesAKillMidWrite) {
  const std::string path = ::testing::TempDir() + "artifact_trace.json";
  ASSERT_TRUE(write_chrome_trace_file(path, sample_spans()).ok());
  const std::string good = read_file(path);
  ASSERT_FALSE(good.empty());

  crash_while_writing(path + ".tmp", "{\"traceEvents\":[{\"na");
  EXPECT_EQ(read_file(path), good) << "kill mid-write corrupted the trace";

  ASSERT_TRUE(write_chrome_trace_file(path, sample_spans()).ok());
  EXPECT_EQ(read_file(path), good);
  EXPECT_FALSE(file_exists(path + ".tmp"));
}

TEST(ArtifactWriteTest, ChromeTraceWriteFailureCarriesThePath) {
  const std::string path = ::testing::TempDir() + "no_such_dir/trace.json";
  const rt::Status status = write_chrome_trace_file(path, sample_spans());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), rt::StatusCode::kUnavailable);
  ASSERT_FALSE(status.context().empty());
  EXPECT_NE(status.context().back().find(path), std::string::npos)
      << "context frame must name the target path: " << status.to_string();
  EXPECT_FALSE(file_exists(path));
}

}  // namespace
}  // namespace gnnbridge::prof
