// The span tracer: disabled no-op behaviour, nesting depth bookkeeping,
// explicit end(), attached args and thread safety.
#include "prof/tracer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "prof/span.hpp"

namespace gnnbridge::prof {
namespace {

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().clear();
    Tracer::instance().set_enabled(true);
  }
  void TearDown() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
  }
};

TEST_F(TracerTest, DisabledSpansRecordNothing) {
  Tracer::instance().set_enabled(false);
  {
    Span outer("outer");
    outer.arg("x", 1.0);
    Span inner("inner");
  }
  EXPECT_EQ(Tracer::instance().size(), 0u);
}

TEST_F(TracerTest, RecordsNameCategoryAndDuration) {
  {
    Span s("work", "engine");
    s.arg("items", 42.0);
  }
  const auto spans = Tracer::instance().snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "work");
  EXPECT_EQ(spans[0].category, "engine");
  EXPECT_EQ(spans[0].depth, 0);
  ASSERT_EQ(spans[0].args.size(), 1u);
  EXPECT_EQ(spans[0].args[0].first, "items");
  EXPECT_DOUBLE_EQ(spans[0].args[0].second, 42.0);
}

TEST_F(TracerTest, NestedSpansGetIncreasingDepths) {
  {
    Span a("a");
    {
      Span b("b");
      { Span c("c"); }
    }
  }
  auto spans = Tracer::instance().snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Completion order is innermost-first.
  EXPECT_EQ(spans[0].name, "c");
  EXPECT_EQ(spans[0].depth, 2);
  EXPECT_EQ(spans[1].name, "b");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].name, "a");
  EXPECT_EQ(spans[2].depth, 0);
  // A parent's interval contains its child's.
  EXPECT_LE(spans[2].start_us, spans[0].start_us);
  EXPECT_GE(spans[2].start_us + spans[2].duration_us,
            spans[0].start_us + spans[0].duration_us);
}

TEST_F(TracerTest, ExplicitEndIsIdempotentAndUnwindsDepth) {
  Span a("a");
  a.end();
  a.end();  // second end() must not double-record or underflow the depth
  { Span b("b"); }
  const auto spans = Tracer::instance().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "a");
  EXPECT_EQ(spans[1].name, "b");
  EXPECT_EQ(spans[1].depth, 0);  // a's end() restored the top level
}

TEST_F(TracerTest, SequentialSpansShareDepthZero) {
  { Span a("a"); }
  { Span b("b"); }
  const auto spans = Tracer::instance().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].depth, 0);
}

TEST_F(TracerTest, ThreadsRecordConcurrentlyWithDistinctIds) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span s("threaded");
        { Span inner("inner"); }
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto spans = Tracer::instance().snapshot();
  EXPECT_EQ(spans.size(), static_cast<std::size_t>(kThreads * kSpansPerThread * 2));
  std::vector<int> tids;
  for (const auto& s : spans) tids.push_back(s.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
  for (const auto& s : spans) {
    EXPECT_TRUE(s.depth == 0 || s.depth == 1);
    EXPECT_EQ(s.depth == 1, s.name == "inner");
  }
}

}  // namespace
}  // namespace gnnbridge::prof
