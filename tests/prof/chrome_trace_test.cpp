// Chrome-trace exporter smoke tests: the document must be well-formed
// JSON, and every B must be closed by a matching E in file order (Perfetto
// rejects unbalanced duration events).
#include "prof/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/counters.hpp"
#include "sim/device.hpp"
#include "tests/testing/json.hpp"

namespace gnnbridge::prof {
namespace {

struct Event {
  std::string name;
  char ph;
};

// Extracts (name, ph) per event in file order. The exporter always writes
// "name" before "ph" inside an event object, so the closest preceding
// "name" key belongs to the same event.
std::vector<Event> extract_events(const std::string& doc) {
  std::vector<Event> events;
  std::size_t pos = 0;
  while ((pos = doc.find("\"ph\":\"", pos)) != std::string::npos) {
    const char ph = doc[pos + 6];
    const std::size_t name_key = doc.rfind("\"name\":\"", pos);
    EXPECT_NE(name_key, std::string::npos);
    const std::size_t name_start = name_key + 8;
    const std::size_t name_end = doc.find('"', name_start);
    events.push_back({doc.substr(name_start, name_end - name_start), ph});
    pos += 6;
  }
  return events;
}

// Stack-checks B/E balance: every E must close the most recent open B of
// the same name, and nothing may stay open.
void expect_balanced(const std::vector<Event>& events) {
  std::vector<std::string> open;
  for (const Event& e : events) {
    if (e.ph == 'B') {
      open.push_back(e.name);
    } else if (e.ph == 'E') {
      ASSERT_FALSE(open.empty()) << "E for '" << e.name << "' with no open B";
      EXPECT_EQ(open.back(), e.name) << "E closes a non-innermost span";
      open.pop_back();
    }
  }
  EXPECT_TRUE(open.empty()) << "unclosed B events remain";
}

SpanRecord span(std::string name, int tid, int depth, std::uint64_t start,
                std::uint64_t dur) {
  SpanRecord s;
  s.name = std::move(name);
  s.category = "test";
  s.tid = tid;
  s.depth = depth;
  s.start_us = start;
  s.duration_us = dur;
  return s;
}

TEST(ChromeTraceTest, EmptyTraceIsValidJson) {
  const std::string doc = chrome_trace_json({});
  testing::JsonChecker check(doc);
  EXPECT_TRUE(check.valid()) << check.error() << " at byte " << check.error_pos();
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("gnnbridge host"), std::string::npos);
}

TEST(ChromeTraceTest, NestedSpansEmitMatchedEventsInFileOrder) {
  // Completion order (as the tracer stores them): innermost first.
  std::vector<SpanRecord> spans;
  spans.push_back(span("inner", 0, 1, 10, 40));
  spans.push_back(span("outer", 0, 0, 0, 100));
  spans.push_back(span("second", 0, 0, 150, 10));

  const std::string doc = chrome_trace_json(spans);
  testing::JsonChecker check(doc);
  ASSERT_TRUE(check.valid()) << check.error() << " at byte " << check.error_pos();

  const auto events = extract_events(doc);
  expect_balanced(events);
  std::vector<std::string> sequence;
  for (const Event& e : events) {
    if (e.ph == 'B' || e.ph == 'E') sequence.push_back(std::string(1, e.ph) + ":" + e.name);
  }
  const std::vector<std::string> want = {"B:outer", "B:inner", "E:inner",
                                         "E:outer", "B:second", "E:second"};
  EXPECT_EQ(sequence, want);
}

TEST(ChromeTraceTest, ZeroDurationSiblingsAtSameInstantStayBalanced) {
  std::vector<SpanRecord> spans;
  spans.push_back(span("a", 0, 0, 5, 0));
  spans.push_back(span("b", 0, 0, 5, 0));
  const std::string doc = chrome_trace_json(spans);
  ASSERT_TRUE(testing::json_valid(doc));
  expect_balanced(extract_events(doc));
}

TEST(ChromeTraceTest, MultipleThreadsEachBalance) {
  std::vector<SpanRecord> spans;
  spans.push_back(span("t0_inner", 0, 1, 2, 4));
  spans.push_back(span("t1_span", 1, 0, 0, 50));
  spans.push_back(span("t0_outer", 0, 0, 0, 10));
  const std::string doc = chrome_trace_json(spans);
  ASSERT_TRUE(testing::json_valid(doc));
  expect_balanced(extract_events(doc));
}

TEST(ChromeTraceTest, SimTrackEmitsKernelsAndOccupancyCounters) {
  sim::RunStats stats;
  sim::KernelStats k;
  k.name = "spmm_node";
  k.phase = "aggregation";
  k.num_blocks = 4;
  k.cycles = 2000.0;
  k.makespan = 1000.0;
  k.l2_hits = 3;
  k.l2_misses = 1;
  k.flops = 256.0;
  k.timeline.add_interval(0.0, 500.0, 4);
  k.timeline.add_interval(500.0, 1000.0, 2);
  stats.kernels.push_back(k);
  stats.total_cycles = 2000.0;
  const sim::DeviceSpec spec = sim::v100();

  const std::string doc = chrome_trace_json({}, &stats, &spec);
  testing::JsonChecker check(doc);
  ASSERT_TRUE(check.valid()) << check.error() << " at byte " << check.error_pos();
  EXPECT_NE(doc.find("simulated GPU"), std::string::npos);
  EXPECT_NE(doc.find("\"spmm_node\""), std::string::npos);
  EXPECT_NE(doc.find("\"active_blocks\""), std::string::npos);

  const auto events = extract_events(doc);
  expect_balanced(events);
  int counters = 0;
  for (const Event& e : events) {
    if (e.ph == 'C') {
      EXPECT_EQ(e.name, "active_blocks");
      ++counters;
    }
  }
  EXPECT_EQ(counters, 3);  // two intervals + the trailing zero sample
}

}  // namespace
}  // namespace gnnbridge::prof
