// Golden test locking the gnnbridge-metrics JSON schema (version 6).
//
// The serialized document for a fixed RunRecord must match byte-for-byte:
// downstream consumers (tools/check_metrics_schema.py, notebook readers,
// prof::load_metrics_file) parse this schema, so any change here is a
// compatibility break and must come with a kMetricsSchemaVersion bump.
#include "prof/metrics_json.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/registry.hpp"
#include "sim/counters.hpp"
#include "sim/device.hpp"
#include "tests/testing/json.hpp"

namespace gnnbridge::prof {
namespace {

// Every quantity is a power of two (or exactly representable) so the
// %.12g rendering is deterministic across platforms.
RunRecord golden_record() {
  sim::KernelStats k;
  k.name = "spmm_node";
  k.phase = "aggregation";
  k.num_blocks = 3;
  k.l2_hits = 6;
  k.l2_misses = 2;
  k.dram_bytes = 128;
  k.flops = 2147483648.0;  // 2^31
  k.issued_flops = 2147485440.0;  // flops + pad + copy + tile
  k.cycles = 2.0e9;
  k.makespan = 1.6e9;
  k.balanced = 8.0e8;  // makespan/balanced == 2 exactly
  k.atomic_cycles = 256.0;
  k.atomic_bytes = 64;
  k.adapter_cycles = 128.0;
  k.adapter_bytes = 32;
  k.pad_flops = 1024.0;
  k.copy_flops = 512.0;
  k.tile_flops = 256.0;
  k.timeline.add_interval(0.0, 100.0, 2);
  k.timeline.add_interval(100.0, 200.0, 4);  // time-weighted mean: 3

  sim::RunStats stats;
  stats.kernels.push_back(k);
  stats.total_cycles = 2.0e9;
  stats.global_syncs = 1;

  sim::DeviceSpec spec;
  spec.num_sms = 2;
  spec.max_blocks_per_sm = 4;
  spec.clock_ghz = 2.0;  // seconds(2e9 cycles) == 1.0 exactly
  spec.l2_bytes = 1 << 20;
  spec.line_bytes = 64;

  return RunRecord{.label = "gcn/ours/collab",
                   .model = "gcn",
                   .backend = "ours",
                   .dataset = "collab",
                   .ms = 1.5,
                   .oom = false,
                   .stats = stats,
                   .spec = spec};
}

MetaInfo golden_meta() {
  return MetaInfo{.git_sha = "deadbee",
                  .timestamp = "2026-01-01T00:00:00Z",
                  .hostname = "goldenhost",
                  .scale_env = "0.25",
                  .threads = 8};
}

// Gap attribution for golden_record(), derivable by hand:
//   locality  = l2_misses * (dram - l2hit) / slots = 2 * 41/8   = 10.25
//   imbalance = makespan - balanced = 1.6e9 - 8e8               = 8e8
//   launch    = cycles - makespan = 2e9 - 1.6e9                 = 4e8
//   sync      = atomic + adapter cycles = 256 + 128             = 384
//   redundancy= (1024 + 512 + 256) / 16 flops-per-cycle         = 112
constexpr const char* kGolden =
    "{\"schema\":\"gnnbridge-metrics\",\"schema_version\":9,"
    "\"experiment\":\"golden\",\"scale\":0.25,"
    "\"meta\":{\"git_sha\":\"deadbee\",\"timestamp\":\"2026-01-01T00:00:00Z\","
    "\"hostname\":\"goldenhost\",\"scale_env\":\"0.25\",\"threads\":8},"
    "\"runs\":["
    "{\"label\":\"gcn/ours/collab\",\"model\":\"gcn\",\"backend\":\"ours\","
    "\"dataset\":\"collab\",\"ms\":1.5,\"oom\":false,"
    "\"device\":{\"num_sms\":2,\"max_blocks_per_sm\":4,\"clock_ghz\":2,"
    "\"l2_bytes\":1048576,\"line_bytes\":64,"
    "\"flops_per_cycle_per_block\":16,\"l2_hit_cycles_per_line\":22,"
    "\"dram_cycles_per_line\":63,\"kernel_launch_cycles\":5000,"
    "\"framework_overhead_cycles\":0},"
    "\"totals\":{\"cycles\":2000000000,\"launches\":1,\"flops\":2147483648,"
    "\"l2_hits\":6,\"l2_misses\":2,\"l2_hit_rate\":0.75,\"dram_bytes\":128,"
    "\"gflops\":2.147483648,\"issued_flops\":2147485440,\"global_syncs\":1,"
    "\"atomic_cycles\":256,\"atomic_bytes\":64,\"adapter_cycles\":128,"
    "\"adapter_bytes\":32,\"pad_flops\":1024,\"copy_flops\":512,"
    "\"tile_flops\":256,\"imbalance\":2,\"ghost_bytes\":0,"
    "\"exchange_syncs\":0,\"exchange_cycles\":0,\"shards\":1},"
    "\"kernels\":[{\"name\":\"spmm_node\",\"phase\":\"aggregation\","
    "\"blocks\":3,\"cycles\":2000000000,\"makespan\":1600000000,"
    "\"balanced\":800000000,\"l2_hits\":6,\"l2_misses\":2,"
    "\"l2_hit_rate\":0.75,\"dram_bytes\":128,\"flops\":2147483648,"
    "\"issued_flops\":2147485440,\"mean_active_blocks\":3,"
    "\"atomic_cycles\":256,\"atomic_bytes\":64,\"adapter_cycles\":128,"
    "\"adapter_bytes\":32,\"pad_flops\":1024,\"copy_flops\":512,"
    "\"tile_flops\":256,\"imbalance\":2}]}],"
    "\"gap_report\":["
    "{\"label\":\"gcn/ours/collab\",\"model\":\"gcn\",\"backend\":\"ours\","
    "\"dataset\":\"collab\",\"total_cycles\":2000000000,"
    "\"attributed_cycles\":1200000506.25,"
    "\"locality\":{\"cycles\":10.25,\"dram_bytes\":128,\"l2_hit_rate\":0.75},"
    "\"imbalance\":{\"cycles\":800000000,\"ratio\":2},"
    "\"launch_overhead\":{\"cycles\":400000000,\"launches\":1},"
    "\"synchronization\":{\"cycles\":384,\"global_syncs\":1,"
    "\"atomic_cycles\":256,\"atomic_bytes\":64,\"adapter_cycles\":128,"
    "\"adapter_bytes\":32},"
    "\"redundancy\":{\"cycles\":112,\"redundant_flops\":1792,"
    "\"pad_flops\":1024,\"copy_flops\":512,\"tile_flops\":256},"
    "\"inter_shard_traffic\":{\"cycles\":0,\"ghost_bytes\":0,"
    "\"exchange_syncs\":0,\"shards\":1}}],"
    "\"degradations\":[],"
    "\"robustness\":{\"jobs\":0,\"attempts\":0,\"retries\":0,"
    "\"deadline_hits\":0,\"cancellations\":0,\"breaker_trips\":0,"
    "\"breaker_open_admissions\":0,\"breaker_half_open_probes\":0,"
    "\"breaker_recoveries\":0,\"cancel_points\":0,\"backoff_cycles\":0},"
    "\"overload\":{\"submitted\":0,\"admitted\":0,\"rejected_queue_full\":0,"
    "\"rejected_quota\":0,\"rejected_deadline\":0,\"rejected_memory\":0,"
    "\"shed_low\":0,\"shed_normal\":0,\"shed_high\":0,"
    "\"overload_transitions\":0,\"peak_queue_depth\":0,"
    "\"peak_backlog_cycles\":0,\"queue_wait_cycles\":0},"
    "\"recovery\":{\"shard_retries\":0,\"shards_reexecuted\":0,"
    "\"fallback_unsharded\":0,\"wasted_cycles\":0},"
    "\"telemetry\":{\"counters\":[],\"gauges\":[],\"histograms\":[]},"
    "\"slo\":{\"enabled\":false,\"latency_objective_cycles\":0,"
    "\"success_objective\":0.99,\"window_cycles\":0,\"tenants\":[]}}\n";

TEST(MetricsJsonTest, GoldenDocumentMatchesSchemaVersion9) {
  MetricsSink& sink = MetricsSink::instance();
  sink.clear();
  sink.configure("golden", 0.25);
  sink.set_meta(golden_meta());
  sink.record(golden_record());
  EXPECT_EQ(sink.to_json(), kGolden);
  sink.clear();
}

TEST(MetricsJsonTest, DegradationEventsSerializeIntoTheirArray) {
  MetricsSink& sink = MetricsSink::instance();
  sink.clear();
  sink.configure("degraded", 1.0);
  rt::DegradationEvent ev;
  ev.seam = "las_cluster";
  ev.knob = "las";
  ev.action = "las->natural_order";
  ev.detail = "FAULT_INJECTED: injected fault at seam 'las_cluster'";
  ev.injected = true;
  sink.record_degradation(ev);
  EXPECT_EQ(sink.degradation_count(), 1u);
  const std::string doc = sink.to_json();
  EXPECT_TRUE(testing::json_valid(doc));
  EXPECT_NE(doc.find("\"degradations\":[{\"seam\":\"las_cluster\",\"knob\":\"las\","
                     "\"action\":\"las->natural_order\",\"detail\":\"FAULT_INJECTED: "
                     "injected fault at seam 'las_cluster'\",\"injected\":true}]"),
            std::string::npos);
  sink.clear();
  EXPECT_EQ(sink.degradation_count(), 0u);
}

TEST(MetricsJsonTest, MakeDegradationFlagsInjectedFaults) {
  const rt::Status injected(rt::StatusCode::kFaultInjected, "injected fault");
  const rt::Status real(rt::StatusCode::kUnavailable, "probe went sideways");
  EXPECT_TRUE(rt::make_degradation("tuner_probe", "auto_tune", "a->b", injected).injected);
  EXPECT_FALSE(rt::make_degradation("tuner_probe", "auto_tune", "a->b", real).injected);
}

TEST(MetricsJsonTest, GoldenDocumentIsValidJson) {
  MetricsSink& sink = MetricsSink::instance();
  sink.clear();
  sink.configure("golden", 0.25);
  sink.set_meta(golden_meta());
  sink.record(golden_record());
  const std::string doc = sink.to_json();
  testing::JsonChecker check(doc);
  EXPECT_TRUE(check.valid()) << check.error() << " at byte " << check.error_pos();
  sink.clear();
}

TEST(MetricsJsonTest, EmptySinkStillEmitsSchemaEnvelope) {
  MetricsSink& sink = MetricsSink::instance();
  sink.clear();
  sink.configure("empty", 1.0);
  const std::string doc = sink.to_json();
  EXPECT_TRUE(testing::json_valid(doc));
  EXPECT_NE(doc.find("\"schema\":\"gnnbridge-metrics\""), std::string::npos);
  EXPECT_NE(doc.find("\"schema_version\":9"), std::string::npos);
  EXPECT_NE(doc.find("\"meta\":{"), std::string::npos);
  EXPECT_NE(doc.find("\"runs\":[]"), std::string::npos);
  EXPECT_NE(doc.find("\"gap_report\":[]"), std::string::npos);
  EXPECT_NE(doc.find("\"degradations\":[]"), std::string::npos);
  EXPECT_NE(doc.find("\"robustness\":{\"jobs\":0,"), std::string::npos);
  EXPECT_NE(doc.find("\"overload\":{\"submitted\":0,"), std::string::npos);
  EXPECT_NE(doc.find("\"telemetry\":{\"counters\":[],\"gauges\":[],\"histograms\":[]}"),
            std::string::npos);
  EXPECT_NE(doc.find("\"slo\":{\"enabled\":false,"), std::string::npos);
}

TEST(MetricsJsonTest, OverloadStatsAccumulateWithMaxMergedPeaks) {
  MetricsSink& sink = MetricsSink::instance();
  sink.clear();
  sink.configure("overload", 1.0);
  OverloadStats a;
  a.submitted = 8;
  a.admitted = 6;
  a.shed_low = 2;
  a.peak_queue_depth = 5;
  a.peak_backlog_cycles = 4096.0;
  a.queue_wait_cycles = 1024.0;
  OverloadStats b;
  b.submitted = 4;
  b.admitted = 4;
  b.overload_transitions = 1;
  b.peak_queue_depth = 3;
  b.peak_backlog_cycles = 8192.0;
  b.queue_wait_cycles = 512.0;
  sink.add_overload(a);
  sink.add_overload(b);
  const OverloadStats got = sink.overload();
  EXPECT_EQ(got.submitted, 12u);
  EXPECT_EQ(got.admitted, 10u);
  EXPECT_EQ(got.shed_low, 2u);
  EXPECT_EQ(got.overload_transitions, 1u);
  EXPECT_EQ(got.peak_queue_depth, 5u);   // max, not sum
  EXPECT_EQ(got.peak_backlog_cycles, 8192.0);
  EXPECT_EQ(got.queue_wait_cycles, 1536.0);
  const std::string doc = sink.to_json();
  EXPECT_TRUE(testing::json_valid(doc));
  EXPECT_NE(doc.find("\"overload\":{\"submitted\":12,\"admitted\":10,"), std::string::npos);
  sink.clear();
  EXPECT_EQ(sink.overload().submitted, 0u);
}

TEST(MetricsJsonTest, TelemetryBlockCarriesRegistryInstruments) {
  MetricsSink& sink = MetricsSink::instance();
  sink.clear();  // also clears the telemetry registry
  sink.configure("telemetry", 1.0);
  obs::TelemetryRegistry& reg = obs::TelemetryRegistry::instance();
  reg.counter_add("serve.jobs", 3);
  reg.gauge_set("serve.queue_depth", 4.0);
  reg.observe("serve.job_cycles", 1024.0);
  const std::string doc = sink.to_json();
  EXPECT_TRUE(testing::json_valid(doc));
  EXPECT_NE(doc.find("\"counters\":[{\"name\":\"serve.jobs\",\"value\":3}]"), std::string::npos);
  EXPECT_NE(doc.find("\"gauges\":[{\"name\":\"serve.queue_depth\",\"value\":4}]"),
            std::string::npos);
  // Quantiles clamp to the exact tracked max, so a single observation
  // reports itself at every percentile.
  EXPECT_NE(doc.find("\"histograms\":[{\"name\":\"serve.job_cycles\",\"count\":1,"
                     "\"sum\":1024,\"min\":1024,\"max\":1024,\"p50\":1024,\"p90\":1024,"
                     "\"p99\":1024,\"buckets\":[{\"le\":"),
            std::string::npos);
  sink.clear();
  EXPECT_EQ(reg.histogram_count(), 0u);
}

TEST(MetricsJsonTest, OomRunSerializesWithEmptyKernels) {
  MetricsSink& sink = MetricsSink::instance();
  sink.clear();
  sink.configure("oom", 1.0);
  RunRecord r;
  r.label = "gat/pyg/products";
  r.model = "gat";
  r.backend = "pyg";
  r.dataset = "products";
  r.oom = true;
  sink.record(r);
  const std::string doc = sink.to_json();
  EXPECT_TRUE(testing::json_valid(doc));
  EXPECT_NE(doc.find("\"oom\":true"), std::string::npos);
  EXPECT_NE(doc.find("\"kernels\":[]"), std::string::npos);
  // Degenerate rates serialize as zeros, never NaN/inf. A bare "nan"
  // substring is legal inside key names (the v7 slo block's "tenants"),
  // so match the value positions a broken serializer would produce.
  EXPECT_NE(doc.find("\"l2_hit_rate\":0"), std::string::npos);
  EXPECT_EQ(doc.find(":nan"), std::string::npos);
  EXPECT_EQ(doc.find(",nan"), std::string::npos);
  EXPECT_EQ(doc.find(":inf"), std::string::npos);
  EXPECT_EQ(doc.find(",inf"), std::string::npos);
  EXPECT_EQ(doc.find("-nan"), std::string::npos);
  EXPECT_EQ(doc.find("-inf"), std::string::npos);
  sink.clear();
}

TEST(MetricsJsonTest, EscapesSpecialCharactersInLabels) {
  MetricsSink& sink = MetricsSink::instance();
  sink.clear();
  sink.configure("escape \"quotes\"\n", 1.0);
  RunRecord r;
  r.label = "a\"b\\c";
  sink.record(r);
  const std::string doc = sink.to_json();
  testing::JsonChecker check(doc);
  EXPECT_TRUE(check.valid()) << check.error() << " at byte " << check.error_pos();
  EXPECT_NE(doc.find("a\\\"b\\\\c"), std::string::npos);
  sink.clear();
}

}  // namespace
}  // namespace gnnbridge::prof
