#include "core/spfetch/step_index.hpp"

#include <gtest/gtest.h>

#include "tests/testing/util.hpp"

namespace gnnbridge::core {
namespace {

TEST(StepIndex, PicksTthNeighbor) {
  const Csr g = testing::csr_from_edges(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_EQ(step_neighbor_index(g, 0)[0], 1);
  EXPECT_EQ(step_neighbor_index(g, 1)[0], 2);
  EXPECT_EQ(step_neighbor_index(g, 2)[0], 3);
}

TEST(StepIndex, WrapsAroundDegree) {
  const Csr g = testing::csr_from_edges(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_EQ(step_neighbor_index(g, 3)[0], 1);
  EXPECT_EQ(step_neighbor_index(g, 7)[0], 2);
}

TEST(StepIndex, IsolatedNodeFallsBackToSelf) {
  const Csr g = testing::csr_from_edges(3, {{0, 1}});
  const auto idx = step_neighbor_index(g, 0);
  EXPECT_EQ(idx[2], 2);
  EXPECT_EQ(idx[1], 1);  // node 1 also has no in-neighbors here
}

TEST(StepIndexSet, BuildsOneBufferPerStep) {
  const Csr g = testing::random_graph(30, 4.0, 1);
  sim::SimContext ctx(sim::v100());
  const StepIndexSet set = build_step_indices(ctx, g, 5);
  EXPECT_EQ(set.index.size(), 5u);
  EXPECT_EQ(set.buf.size(), 5u);
  for (const auto& idx : set.index) EXPECT_EQ(idx.size(), 30u);
  // Buffers are distinct allocations.
  EXPECT_NE(set.buf[0].base, set.buf[1].base);
}

TEST(StepIndexSet, MatchesScalarFunction) {
  const Csr g = testing::random_graph(25, 6.0, 2);
  sim::SimContext ctx(sim::v100());
  const StepIndexSet set = build_step_indices(ctx, g, 3);
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(set.index[static_cast<std::size_t>(t)], step_neighbor_index(g, t));
  }
}

}  // namespace
}  // namespace gnnbridge::core
