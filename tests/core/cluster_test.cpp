#include "core/locality/cluster.hpp"

#include <gtest/gtest.h>

#include "tests/testing/util.hpp"

namespace gnnbridge::core {
namespace {

MinHashSignatures empty_sigs(NodeId n, int rows = 4) {
  MinHashSignatures s;
  s.rows = rows;
  // Unique signatures: re-posed pairs estimate 0 similarity and drop out.
  s.sig.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(rows));
  for (std::size_t i = 0; i < s.sig.size(); ++i) s.sig[i] = i;
  return s;
}

TEST(PairMerging, SingletonsWithoutPairs) {
  const Clustering c = merge_pairs(5, {}, empty_sigs(5), {});
  EXPECT_EQ(c.clusters.size(), 5u);
  EXPECT_EQ(c.num_nontrivial(), 0);
}

TEST(PairMerging, SimplePairMerges) {
  std::vector<CandidatePair> pairs{{0, 1, 0.9}};
  const Clustering c = merge_pairs(4, pairs, empty_sigs(4), {});
  EXPECT_EQ(c.cluster_of[0], c.cluster_of[1]);
  EXPECT_NE(c.cluster_of[0], c.cluster_of[2]);
  EXPECT_EQ(c.num_nontrivial(), 1);
}

TEST(PairMerging, ChainMergesThroughRepresentatives) {
  // Identical signatures for 0..2 so re-posed representative pairs keep a
  // positive similarity estimate.
  MinHashSignatures s;
  s.rows = 4;
  s.sig.assign(3 * 4, 42);
  std::vector<CandidatePair> pairs{{0, 1, 0.9}, {1, 2, 0.8}};
  const Clustering c = merge_pairs(3, pairs, s, {});
  EXPECT_EQ(c.cluster_of[0], c.cluster_of[1]);
  EXPECT_EQ(c.cluster_of[1], c.cluster_of[2]);
}

TEST(PairMerging, CapBlocksOversizeClusters) {
  // All 6 nodes pairwise similar, cap 4: no cluster may exceed 4.
  MinHashSignatures s;
  s.rows = 4;
  s.sig.assign(6 * 4, 7);
  std::vector<CandidatePair> pairs;
  for (NodeId a = 0; a < 6; ++a) {
    for (NodeId b = static_cast<NodeId>(a + 1); b < 6; ++b) pairs.push_back({a, b, 0.9});
  }
  ClusterConfig cfg;
  cfg.max_cluster_size = 4;
  const Clustering c = merge_pairs(6, pairs, s, cfg);
  for (const auto& cluster : c.clusters) {
    EXPECT_LE(cluster.size(), 4u);
  }
}

TEST(PairMerging, CapOneMeansNoMerging) {
  std::vector<CandidatePair> pairs{{0, 1, 0.9}};
  ClusterConfig cfg;
  cfg.max_cluster_size = 1;
  const Clustering c = merge_pairs(3, pairs, empty_sigs(3), cfg);
  EXPECT_EQ(c.num_nontrivial(), 0);
}

TEST(PairMerging, HighSimilarityPairsWinContention) {
  // 1 can merge with 0 (sim .9) or 2 (sim .3); cap 2 allows only one.
  std::vector<CandidatePair> pairs{{1, 2, 0.3}, {0, 1, 0.9}};
  ClusterConfig cfg;
  cfg.max_cluster_size = 2;
  const Clustering c = merge_pairs(3, pairs, empty_sigs(3), cfg);
  EXPECT_EQ(c.cluster_of[0], c.cluster_of[1]);
  EXPECT_NE(c.cluster_of[1], c.cluster_of[2]);
}

TEST(PairMerging, EveryNodeInExactlyOneCluster) {
  tensor::Rng rng(5);
  std::vector<CandidatePair> pairs;
  for (int i = 0; i < 200; ++i) {
    const NodeId a = static_cast<NodeId>(rng.below(100));
    const NodeId b = static_cast<NodeId>(rng.below(100));
    if (a == b) continue;
    pairs.push_back({std::min(a, b), std::max(a, b), rng.uniform()});
  }
  const Clustering c = merge_pairs(100, pairs, empty_sigs(100), {});
  std::vector<int> seen(100, 0);
  for (const auto& cluster : c.clusters) {
    for (NodeId v : cluster) seen[static_cast<std::size_t>(v)]++;
  }
  for (int count : seen) EXPECT_EQ(count, 1);
  for (NodeId v = 0; v < 100; ++v) {
    const auto& cl = c.clusters[static_cast<std::size_t>(c.cluster_of[v])];
    EXPECT_NE(std::find(cl.begin(), cl.end(), v), cl.end());
  }
}

TEST(PairMerging, RePosedPairDropsWhenRepresentativesAreDissimilar) {
  // 0 and 1 share a signature; 2 is unrelated. After {0,1} merges, the
  // stale pair {1,2} must be re-posed between rep(1) and 2 — whose
  // estimated similarity is 0 — and dropped, never merged at its original
  // (now meaningless) similarity.
  MinHashSignatures s;
  s.rows = 4;
  s.sig = {7, 7, 7, 7,      // node 0
           7, 7, 7, 7,      // node 1
           9, 10, 11, 12};  // node 2
  std::vector<CandidatePair> pairs{{0, 1, 0.9}, {1, 2, 0.8}};
  const Clustering c = merge_pairs(3, pairs, s, {});
  EXPECT_EQ(c.cluster_of[0], c.cluster_of[1]);
  EXPECT_NE(c.cluster_of[1], c.cluster_of[2]);
  EXPECT_EQ(c.num_nontrivial(), 1);
}

TEST(PairMerging, RePosedPairMergesAtRepresentativeSimilarity) {
  // Mirror case: the stale endpoint's representative IS similar to the
  // other node, so the re-posed pair comes back and merges — through the
  // representative, not the stale node.
  MinHashSignatures s;
  s.rows = 4;
  s.sig.assign(4 * 4, 7);  // everyone similar
  // {2,3} merges first (highest sim), then {0,1}; the low-sim {1,3} pair
  // is stale on both ends and must be re-posed between the reps.
  std::vector<CandidatePair> pairs{{2, 3, 0.95}, {0, 1, 0.9}, {1, 3, 0.2}};
  const Clustering c = merge_pairs(4, pairs, s, {});
  EXPECT_EQ(c.cluster_of[0], c.cluster_of[3]);
  EXPECT_EQ(c.num_nontrivial(), 1);
  EXPECT_EQ(c.clusters[static_cast<std::size_t>(c.cluster_of[0])].size(), 4u);
}

TEST(PairMerging, DeterministicUnderShuffledCandidateOrder) {
  // The queue orders by (similarity, ids) with a full deterministic
  // tie-break, so the clustering is a function of the pair *set*, not the
  // order candidates arrive in — including duplicated similarities.
  tensor::Rng rng(11);
  std::vector<CandidatePair> pairs;
  for (int i = 0; i < 300; ++i) {
    const NodeId a = static_cast<NodeId>(rng.below(64));
    const NodeId b = static_cast<NodeId>(rng.below(64));
    if (a == b) continue;
    // Quantized similarities force plenty of ties.
    const double sim = 0.1 * static_cast<double>(1 + rng.below(9));
    pairs.push_back({std::min(a, b), std::max(a, b), sim});
  }
  MinHashSignatures s;
  s.rows = 4;
  s.sig.assign(64 * 4, 3);  // all-similar: re-posed pairs stay alive

  const Clustering base = merge_pairs(64, pairs, s, {});
  std::vector<CandidatePair> reversed(pairs.rbegin(), pairs.rend());
  std::vector<CandidatePair> rotated(pairs.begin() + pairs.size() / 2, pairs.end());
  rotated.insert(rotated.end(), pairs.begin(), pairs.begin() + pairs.size() / 2);
  for (const auto& variant : {reversed, rotated}) {
    const Clustering c = merge_pairs(64, variant, s, {});
    ASSERT_EQ(c.cluster_of.size(), base.cluster_of.size());
    EXPECT_EQ(c.cluster_of, base.cluster_of);
    EXPECT_EQ(c.clusters, base.clusters);
  }
}

TEST(PairMerging, DefaultCapIs32) {
  ClusterConfig cfg;
  EXPECT_EQ(cfg.max_cluster_size, 32);
}

}  // namespace
}  // namespace gnnbridge::core
