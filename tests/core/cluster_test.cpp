#include "core/locality/cluster.hpp"

#include <gtest/gtest.h>

#include "tests/testing/util.hpp"

namespace gnnbridge::core {
namespace {

MinHashSignatures empty_sigs(NodeId n, int rows = 4) {
  MinHashSignatures s;
  s.rows = rows;
  // Unique signatures: re-posed pairs estimate 0 similarity and drop out.
  s.sig.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(rows));
  for (std::size_t i = 0; i < s.sig.size(); ++i) s.sig[i] = i;
  return s;
}

TEST(PairMerging, SingletonsWithoutPairs) {
  const Clustering c = merge_pairs(5, {}, empty_sigs(5), {});
  EXPECT_EQ(c.clusters.size(), 5u);
  EXPECT_EQ(c.num_nontrivial(), 0);
}

TEST(PairMerging, SimplePairMerges) {
  std::vector<CandidatePair> pairs{{0, 1, 0.9}};
  const Clustering c = merge_pairs(4, pairs, empty_sigs(4), {});
  EXPECT_EQ(c.cluster_of[0], c.cluster_of[1]);
  EXPECT_NE(c.cluster_of[0], c.cluster_of[2]);
  EXPECT_EQ(c.num_nontrivial(), 1);
}

TEST(PairMerging, ChainMergesThroughRepresentatives) {
  // Identical signatures for 0..2 so re-posed representative pairs keep a
  // positive similarity estimate.
  MinHashSignatures s;
  s.rows = 4;
  s.sig.assign(3 * 4, 42);
  std::vector<CandidatePair> pairs{{0, 1, 0.9}, {1, 2, 0.8}};
  const Clustering c = merge_pairs(3, pairs, s, {});
  EXPECT_EQ(c.cluster_of[0], c.cluster_of[1]);
  EXPECT_EQ(c.cluster_of[1], c.cluster_of[2]);
}

TEST(PairMerging, CapBlocksOversizeClusters) {
  // All 6 nodes pairwise similar, cap 4: no cluster may exceed 4.
  MinHashSignatures s;
  s.rows = 4;
  s.sig.assign(6 * 4, 7);
  std::vector<CandidatePair> pairs;
  for (NodeId a = 0; a < 6; ++a) {
    for (NodeId b = static_cast<NodeId>(a + 1); b < 6; ++b) pairs.push_back({a, b, 0.9});
  }
  ClusterConfig cfg;
  cfg.max_cluster_size = 4;
  const Clustering c = merge_pairs(6, pairs, s, cfg);
  for (const auto& cluster : c.clusters) {
    EXPECT_LE(cluster.size(), 4u);
  }
}

TEST(PairMerging, CapOneMeansNoMerging) {
  std::vector<CandidatePair> pairs{{0, 1, 0.9}};
  ClusterConfig cfg;
  cfg.max_cluster_size = 1;
  const Clustering c = merge_pairs(3, pairs, empty_sigs(3), cfg);
  EXPECT_EQ(c.num_nontrivial(), 0);
}

TEST(PairMerging, HighSimilarityPairsWinContention) {
  // 1 can merge with 0 (sim .9) or 2 (sim .3); cap 2 allows only one.
  std::vector<CandidatePair> pairs{{1, 2, 0.3}, {0, 1, 0.9}};
  ClusterConfig cfg;
  cfg.max_cluster_size = 2;
  const Clustering c = merge_pairs(3, pairs, empty_sigs(3), cfg);
  EXPECT_EQ(c.cluster_of[0], c.cluster_of[1]);
  EXPECT_NE(c.cluster_of[1], c.cluster_of[2]);
}

TEST(PairMerging, EveryNodeInExactlyOneCluster) {
  tensor::Rng rng(5);
  std::vector<CandidatePair> pairs;
  for (int i = 0; i < 200; ++i) {
    const NodeId a = static_cast<NodeId>(rng.below(100));
    const NodeId b = static_cast<NodeId>(rng.below(100));
    if (a == b) continue;
    pairs.push_back({std::min(a, b), std::max(a, b), rng.uniform()});
  }
  const Clustering c = merge_pairs(100, pairs, empty_sigs(100), {});
  std::vector<int> seen(100, 0);
  for (const auto& cluster : c.clusters) {
    for (NodeId v : cluster) seen[static_cast<std::size_t>(v)]++;
  }
  for (int count : seen) EXPECT_EQ(count, 1);
  for (NodeId v = 0; v < 100; ++v) {
    const auto& cl = c.clusters[static_cast<std::size_t>(c.cluster_of[v])];
    EXPECT_NE(std::find(cl.begin(), cl.end(), v), cl.end());
  }
}

TEST(PairMerging, DefaultCapIs32) {
  ClusterConfig cfg;
  EXPECT_EQ(cfg.max_cluster_size, 32);
}

}  // namespace
}  // namespace gnnbridge::core
