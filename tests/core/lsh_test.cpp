#include "core/locality/lsh.hpp"

#include <gtest/gtest.h>

#include "tests/testing/util.hpp"

namespace gnnbridge::core {
namespace {

/// Builds a graph with `pairs` groups of two nodes sharing identical
/// neighbor sets, plus noise nodes with random neighbors.
Csr twin_graph(int pairs, int noise, std::uint64_t seed) {
  tensor::Rng rng(seed);
  std::vector<std::pair<NodeId, NodeId>> edges;
  const NodeId base_targets = static_cast<NodeId>(2 * pairs + noise);
  const NodeId total = base_targets + 20;
  for (int p = 0; p < pairs; ++p) {
    const NodeId a = static_cast<NodeId>(2 * p);
    const NodeId b = static_cast<NodeId>(2 * p + 1);
    for (int t = 0; t < 6; ++t) {
      const NodeId target = static_cast<NodeId>(base_targets + (p * 3 + t) % 20);
      edges.push_back({a, target});
      edges.push_back({b, target});
    }
  }
  for (int nz = 0; nz < noise; ++nz) {
    const NodeId v = static_cast<NodeId>(2 * pairs + nz);
    for (int t = 0; t < 6; ++t) {
      edges.push_back({v, static_cast<NodeId>(base_targets + rng.below(20))});
    }
  }
  return testing::csr_from_edges(total, std::move(edges));
}

TEST(Lsh, FindsIdenticalTwins) {
  const Csr g = twin_graph(10, 30, 1);
  const LshConfig cfg{};
  const MinHashSignatures sigs = minhash_signatures(g, cfg.bands * cfg.rows_per_band);
  const auto pairs = lsh_candidate_pairs(sigs, cfg);

  // Every twin pair (2p, 2p+1) must be among the candidates: identical
  // sets collide in every band.
  for (int p = 0; p < 10; ++p) {
    const NodeId a = static_cast<NodeId>(2 * p);
    const NodeId b = static_cast<NodeId>(2 * p + 1);
    const bool found = std::any_of(pairs.begin(), pairs.end(), [&](const CandidatePair& cp) {
      return cp.a == a && cp.b == b;
    });
    EXPECT_TRUE(found) << "twin pair " << p;
  }
}

TEST(Lsh, PairsAreDeduplicatedAndOrdered) {
  const Csr g = twin_graph(5, 10, 2);
  const LshConfig cfg{};
  const MinHashSignatures sigs = minhash_signatures(g, cfg.bands * cfg.rows_per_band);
  const auto pairs = lsh_candidate_pairs(sigs, cfg);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_LT(pairs[i].a, pairs[i].b);
    for (std::size_t j = i + 1; j < pairs.size(); ++j) {
      EXPECT_FALSE(pairs[i].a == pairs[j].a && pairs[i].b == pairs[j].b);
    }
  }
}

TEST(Lsh, MinSimilarityFilters) {
  const Csr g = twin_graph(5, 40, 3);
  const MinHashSignatures sigs = minhash_signatures(g, 16);
  LshConfig strict{};
  strict.min_similarity = 0.99;
  const auto strict_pairs = lsh_candidate_pairs(sigs, strict);
  for (const auto& p : strict_pairs) EXPECT_GE(p.similarity, 0.99);

  LshConfig loose{};
  loose.min_similarity = 0.0;
  const auto loose_pairs = lsh_candidate_pairs(sigs, loose);
  EXPECT_GE(loose_pairs.size(), strict_pairs.size());
}

TEST(Lsh, SearchSpaceFarBelowQuadratic) {
  // The whole point of LSH: candidate count is nowhere near N^2/2.
  const Csr g = testing::random_graph(500, 6.0, 4);
  const LshConfig cfg{};
  const MinHashSignatures sigs = minhash_signatures(g, cfg.bands * cfg.rows_per_band);
  const auto pairs = lsh_candidate_pairs(sigs, cfg);
  EXPECT_LT(pairs.size(), 500u * 499u / 20u);
}

TEST(Lsh, EmptyGraphYieldsNoPairs) {
  Csr g;
  g.num_nodes = 5;
  g.row_ptr.assign(6, 0);
  const MinHashSignatures sigs = minhash_signatures(g, 16);
  EXPECT_TRUE(lsh_candidate_pairs(sigs, {}).empty());
}

}  // namespace
}  // namespace gnnbridge::core
