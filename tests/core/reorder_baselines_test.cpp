#include "core/locality/reorder_baselines.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "tests/testing/util.hpp"

namespace gnnbridge::core {
namespace {

using graph::Csr;

bool is_permutation_of_n(const std::vector<graph::NodeId>& order, graph::NodeId n) {
  if (static_cast<graph::NodeId>(order.size()) != n) return false;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (graph::NodeId v : order) {
    if (v < 0 || v >= n || seen[static_cast<std::size_t>(v)]) return false;
    seen[static_cast<std::size_t>(v)] = true;
  }
  return true;
}

TEST(DegreeOrder, SortedDescending) {
  const Csr g = testing::random_graph(100, 6.0, 1);
  const auto order = degree_order(g);
  ASSERT_TRUE(is_permutation_of_n(order, 100));
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(g.degree(order[i - 1]), g.degree(order[i]));
  }
}

TEST(DegreeOrder, StableOnTies) {
  const Csr g = testing::path_graph(10);  // all in-degrees 0 or 1
  const auto order = degree_order(g);
  // Among equal degrees, ids stay ascending.
  graph::NodeId prev_deg1 = -1, prev_deg0 = -1;
  for (graph::NodeId v : order) {
    if (g.degree(v) == 1) {
      EXPECT_GT(v, prev_deg1);
      prev_deg1 = v;
    } else {
      EXPECT_GT(v, prev_deg0);
      prev_deg0 = v;
    }
  }
}

TEST(BfsOrder, PermutationCoveringAllComponents) {
  // Two disjoint components.
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  for (graph::NodeId v = 0; v < 5; ++v) edges.push_back({v, (v + 1) % 5});
  for (graph::NodeId v = 5; v < 12; ++v) edges.push_back({v, v == 11 ? 5 : v + 1});
  const Csr g = testing::csr_from_edges(12, std::move(edges));
  const auto order = bfs_order(g);
  EXPECT_TRUE(is_permutation_of_n(order, 12));
}

TEST(BfsOrder, NeighborsFollowSeedClosely) {
  const Csr g = testing::star_graph(20);  // hub 0 first (highest degree)
  const auto order = bfs_order(g);
  EXPECT_EQ(order[0], 0);
}

TEST(BfsOrder, IncludesIsolatedNodes) {
  const Csr g = testing::csr_from_edges(6, {{0, 1}});
  const auto order = bfs_order(g);
  EXPECT_TRUE(is_permutation_of_n(order, 6));
}

}  // namespace
}  // namespace gnnbridge::core
