#include "core/locality/schedule.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/datasets.hpp"
#include "tests/testing/util.hpp"

namespace gnnbridge::core {
namespace {

bool is_permutation_of_n(const std::vector<NodeId>& order, NodeId n) {
  if (static_cast<NodeId>(order.size()) != n) return false;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (NodeId v : order) {
    if (v < 0 || v >= n || seen[static_cast<std::size_t>(v)]) return false;
    seen[static_cast<std::size_t>(v)] = true;
  }
  return true;
}

TEST(LasSchedule, OrderIsAPermutation) {
  const Csr g = testing::random_graph(200, 8.0, 1);
  const LasSchedule s = locality_aware_schedule(g);
  EXPECT_TRUE(is_permutation_of_n(s.order, g.num_nodes));
}

TEST(LasSchedule, Deterministic) {
  const Csr g = testing::random_graph(150, 6.0, 2);
  const LasSchedule a = locality_aware_schedule(g);
  const LasSchedule b = locality_aware_schedule(g);
  EXPECT_EQ(a.order, b.order);
}

TEST(LasSchedule, TwinsEndUpAdjacent) {
  // Nodes 0..3 share one neighbor set; 4..7 share another; the rest are
  // random. Cluster members must be contiguous in the order.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v < 4; ++v) {
    for (NodeId t : {20, 21, 22, 23, 24}) edges.push_back({v, t});
  }
  for (NodeId v = 4; v < 8; ++v) {
    for (NodeId t : {30, 31, 32, 33, 34}) edges.push_back({v, t});
  }
  tensor::Rng rng(3);
  for (NodeId v = 8; v < 20; ++v) {
    for (int i = 0; i < 5; ++i) edges.push_back({v, static_cast<NodeId>(20 + rng.below(20))});
  }
  const Csr g = testing::csr_from_edges(40, std::move(edges));
  const LasSchedule s = locality_aware_schedule(g);

  auto pos = [&](NodeId v) {
    return std::find(s.order.begin(), s.order.end(), v) - s.order.begin();
  };
  // Group A contiguous.
  std::vector<std::ptrdiff_t> pa = {pos(0), pos(1), pos(2), pos(3)};
  std::sort(pa.begin(), pa.end());
  EXPECT_EQ(pa.back() - pa.front(), 3);
  // Group B contiguous.
  std::vector<std::ptrdiff_t> pb = {pos(4), pos(5), pos(6), pos(7)};
  std::sort(pb.begin(), pb.end());
  EXPECT_EQ(pb.back() - pb.front(), 3);
  EXPECT_GE(s.num_nontrivial_clusters, 2);
}

TEST(LasSchedule, NoSimilarityMeansNaturalOrder) {
  // A directed cycle: every neighbor set is a distinct singleton.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v < 20; ++v) edges.push_back({v, static_cast<NodeId>((v + 1) % 20)});
  const Csr g = testing::csr_from_edges(20, std::move(edges));
  const LasSchedule s = locality_aware_schedule(g);
  std::vector<NodeId> natural(20);
  std::iota(natural.begin(), natural.end(), 0);
  EXPECT_EQ(s.order, natural);
  EXPECT_EQ(s.num_nontrivial_clusters, 0);
}

TEST(LasSchedule, RunsOnRealDatasetShape) {
  const graph::Dataset d = graph::make_dataset(graph::DatasetId::kCollab, 0.05);
  const LasSchedule s = locality_aware_schedule(d.csr);
  EXPECT_TRUE(is_permutation_of_n(s.order, d.csr.num_nodes));
  // A power-law collaboration graph has *some* overlapping neighborhoods.
  EXPECT_GT(s.num_candidate_pairs, 0);
}

TEST(LasSchedule, ClusterSizeCapRespectedInOrdering) {
  // 64 identical-neighborhood nodes with default cap 32: at least two
  // clusters, none bigger than 32.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v < 64; ++v) {
    for (NodeId t : {70, 71, 72}) edges.push_back({v, t});
  }
  const Csr g = testing::csr_from_edges(80, std::move(edges));
  LasConfig cfg;
  const LasSchedule s = locality_aware_schedule(g, cfg);
  EXPECT_GE(s.num_nontrivial_clusters, 2);
}

}  // namespace
}  // namespace gnnbridge::core
