#include "core/locality/minhash.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/stats.hpp"
#include "tests/testing/util.hpp"

namespace gnnbridge::core {
namespace {

TEST(MinHash, IdenticalSetsGiveIdenticalSignatures) {
  // Nodes 0 and 1 both aggregate {2, 3, 4}.
  const Csr g = testing::csr_from_edges(
      5, {{0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}});
  const MinHashSignatures s = minhash_signatures(g, 16);
  EXPECT_DOUBLE_EQ(estimate_jaccard(s, 0, 1), 1.0);
}

TEST(MinHash, DisjointSetsRarelyCollide) {
  const Csr g = testing::csr_from_edges(8, {{0, 2}, {0, 3}, {1, 4}, {1, 5}});
  const MinHashSignatures s = minhash_signatures(g, 64);
  EXPECT_LT(estimate_jaccard(s, 0, 1), 0.15);
}

TEST(MinHash, EmptySetsNeverMatchAnything) {
  const Csr g = testing::csr_from_edges(4, {{0, 1}});
  const MinHashSignatures s = minhash_signatures(g, 8);
  // Nodes 2 and 3 are isolated.
  EXPECT_DOUBLE_EQ(estimate_jaccard(s, 2, 3), 0.0);
  EXPECT_DOUBLE_EQ(estimate_jaccard(s, 2, 0), 0.0);
}

TEST(MinHash, EstimateApproximatesTrueJaccard) {
  // The statistical contract: E[estimate] = true Jaccard. Check on random
  // graphs with many hash rows.
  const Csr g = testing::random_graph(60, 12.0, 7);
  const MinHashSignatures s = minhash_signatures(g, 256);
  double worst = 0.0;
  int checked = 0;
  for (NodeId a = 0; a < 20; ++a) {
    for (NodeId b = static_cast<NodeId>(a + 1); b < 20; ++b) {
      if (g.degree(a) == 0 || g.degree(b) == 0) continue;
      const double truth = graph::jaccard(g.neighbors(a), g.neighbors(b));
      const double est = estimate_jaccard(s, a, b);
      worst = std::max(worst, std::fabs(truth - est));
      ++checked;
    }
  }
  ASSERT_GT(checked, 50);
  EXPECT_LT(worst, 0.25);  // 256 rows: stderr ~ sqrt(p(1-p)/256) <= 0.032
}

TEST(MinHash, DeterministicPerSeed) {
  const Csr g = testing::random_graph(30, 5.0, 9);
  const MinHashSignatures a = minhash_signatures(g, 16, 123);
  const MinHashSignatures b = minhash_signatures(g, 16, 123);
  EXPECT_EQ(a.sig, b.sig);
  const MinHashSignatures c = minhash_signatures(g, 16, 456);
  EXPECT_NE(a.sig, c.sig);
}

TEST(MinHash, SignatureSizeMatchesRows) {
  const Csr g = testing::random_graph(10, 3.0, 11);
  const MinHashSignatures s = minhash_signatures(g, 12);
  EXPECT_EQ(s.rows, 12);
  EXPECT_EQ(s.sig.size(), 120u);
}

}  // namespace
}  // namespace gnnbridge::core
