#include "core/tuner/tuner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "engine/tune_helper.hpp"
#include "tests/testing/util.hpp"

namespace gnnbridge::core {
namespace {

TEST(Tuner, FindsMinimumOfSyntheticObjective) {
  const Csr g = testing::random_graph(100, 8.0, 1);
  // Synthetic bowl: best at lanes=16, bound=32.
  const TuneResult r = tune_graph_op(g, [](const TuneConfig& cfg) {
    const double lane_term = std::fabs(std::log2(cfg.lanes) - 4.0);
    const double bound_term =
        cfg.group_bound == 0 ? 10.0 : std::fabs(static_cast<double>(cfg.group_bound) - 32.0);
    return 1.0 + lane_term * 100.0 + bound_term;
  });
  EXPECT_EQ(r.best.lanes, 16);
  EXPECT_EQ(r.best.group_bound, 32);
}

TEST(Tuner, RoundsBoundedByConfig) {
  const Csr g = testing::random_graph(100, 20.0, 2);
  TunerOptions opt;
  opt.max_bound_rounds = 5;
  const TuneResult r = tune_graph_op(
      g, [](const TuneConfig&) { return 1.0; }, {}, opt);
  // lanes candidates + <= max_bound_rounds bounds + ungrouped probe.
  EXPECT_LE(r.rounds, static_cast<int>(opt.lane_candidates.size()) + 5 + 1);
}

TEST(Tuner, HistoryRecordsEveryProbe) {
  const Csr g = testing::random_graph(50, 6.0, 3);
  const TuneResult r = tune_graph_op(g, [](const TuneConfig& cfg) {
    return static_cast<double>(cfg.lanes + cfg.group_bound + 1);
  });
  EXPECT_EQ(static_cast<int>(r.history.size()), r.rounds);
  double best = 1e300;
  for (const auto& s : r.history) best = std::min(best, s.cycles);
  EXPECT_DOUBLE_EQ(best, r.best_cycles);
}

TEST(Tuner, PassesThroughLasFlagAndTogglesItLast) {
  const Csr g = testing::random_graph(40, 5.0, 4);
  TuneConfig base;
  base.use_las = true;
  int without_las = 0;
  const TuneResult r = tune_graph_op(g, [&](const TuneConfig& cfg) {
    without_las += cfg.use_las ? 0 : 1;
    return 1.0;
  }, base);
  // All probes honor the base flag except the final toggle probe.
  EXPECT_EQ(without_las, 1);
  EXPECT_FALSE(r.history.back().config.use_las);
}

TEST(Tuner, LasToggleCanWin) {
  const Csr g = testing::random_graph(40, 5.0, 5);
  TuneConfig base;
  base.use_las = true;
  // An objective that hates LAS: the toggle probe must win.
  const TuneResult r = tune_graph_op(
      g, [](const TuneConfig& cfg) { return cfg.use_las ? 100.0 : 1.0; }, base);
  EXPECT_FALSE(r.best.use_las);
}

TEST(Tuner, BrokenProbeAbortsWithStructuredError) {
  const Csr g = testing::random_graph(50, 6.0, 8);
  // A NaN measurement (broken simulator, poisoned counters) must abort the
  // search with a structured error, not poison the comparison chain.
  const TuneResult r =
      tune_graph_op(g, [](const TuneConfig&) { return std::nan(""); });
  EXPECT_FALSE(r.error.ok());
  EXPECT_EQ(r.error.code(), rt::StatusCode::kUnavailable);
  EXPECT_NE(r.error.to_string().find("tune_graph_op"), std::string::npos);
}

TEST(Tuner, NegativeProbeAbortsWithStructuredError) {
  const Csr g = testing::random_graph(50, 6.0, 9);
  const TuneResult r = tune_graph_op(g, [](const TuneConfig&) { return -5.0; });
  EXPECT_FALSE(r.error.ok());
  EXPECT_EQ(r.error.code(), rt::StatusCode::kUnavailable);
}

TEST(Tuner, ProbeFailureMidSearchKeepsLastGoodCandidate) {
  const Csr g = testing::random_graph(50, 6.0, 10);
  int calls = 0;
  const TuneResult r = tune_graph_op(g, [&](const TuneConfig&) {
    return ++calls > 3 ? std::nan("") : static_cast<double>(calls);
  });
  EXPECT_FALSE(r.error.ok());
  // The first (cheapest) probe survives as the best seen before the break.
  EXPECT_DOUBLE_EQ(r.best_cycles, 1.0);
  EXPECT_EQ(static_cast<int>(r.history.size()), 3);
}

TEST(TuneHelper, MeasureAggregationPositiveAndConfigSensitive) {
  const Csr g = testing::random_graph(400, 16.0, 5);
  const sim::DeviceSpec spec = sim::v100();
  TuneConfig a;
  a.lanes = 32;
  a.group_bound = 0;
  TuneConfig b;
  b.lanes = 32;
  b.group_bound = 16;
  const double ca = engine::measure_aggregation(g, 64, a, spec, 1.0);
  const double cb = engine::measure_aggregation(g, 64, b, spec, 1.0);
  EXPECT_GT(ca, 0.0);
  EXPECT_GT(cb, 0.0);
  EXPECT_NE(ca, cb);
}

TEST(TuneHelper, SamplingReducesMeasuredCost) {
  // Needs more blocks than the device has slots, otherwise the makespan is
  // one block's duration either way.
  const Csr g = testing::random_graph(6000, 12.0, 6);
  const sim::DeviceSpec spec = sim::v100();
  TuneConfig cfg;
  const double full = engine::measure_aggregation(g, 32, cfg, spec, 1.0);
  const double sampled = engine::measure_aggregation(g, 32, cfg, spec, 0.25);
  EXPECT_LT(sampled, full);
}

TEST(TuneHelper, EndToEndTuneProducesValidConfig) {
  const Csr g = testing::random_graph(300, 24.0, 7);
  const core::TuneResult r = engine::tune_for(g, 48, sim::v100(), /*allow_las=*/false);
  EXPECT_GT(r.best_cycles, 0.0);
  EXPECT_GT(r.rounds, 4);
  EXPECT_TRUE(r.best.lanes == 4 || r.best.lanes == 8 || r.best.lanes == 16 ||
              r.best.lanes == 32 || r.best.lanes == 64);
}

}  // namespace
}  // namespace gnnbridge::core
