#include "core/balance/neighbor_grouping.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "tests/testing/util.hpp"

namespace gnnbridge::core {
namespace {

/// Tasks must tile each row's [row_ptr[v], row_ptr[v+1]) exactly.
void expect_exact_cover(const Csr& g, const std::vector<Task>& tasks) {
  std::vector<EdgeId> covered(static_cast<std::size_t>(g.num_nodes), 0);
  for (const Task& t : tasks) {
    EXPECT_GE(t.begin, g.row_ptr[static_cast<std::size_t>(t.v)]);
    EXPECT_LE(t.end, g.row_ptr[static_cast<std::size_t>(t.v) + 1]);
    covered[static_cast<std::size_t>(t.v)] += t.size();
  }
  for (NodeId v = 0; v < g.num_nodes; ++v) {
    EXPECT_EQ(covered[static_cast<std::size_t>(v)], g.degree(v)) << "node " << v;
  }
}

TEST(NeighborGrouping, NoBoundMeansWholeRows) {
  const Csr g = testing::random_graph(50, 6.0, 1);
  const GroupedTasks r = neighbor_group_tasks(g, 0);
  EXPECT_FALSE(r.any_split);
  EXPECT_EQ(r.tasks.size(), 50u);
  expect_exact_cover(g, r.tasks);
}

TEST(NeighborGrouping, BoundRespected) {
  const Csr g = testing::star_graph(100);  // node 0: degree 99
  const GroupedTasks r = neighbor_group_tasks(g, 16);
  EXPECT_TRUE(r.any_split);
  for (const Task& t : r.tasks) EXPECT_LE(t.size(), 16);
  expect_exact_cover(g, r.tasks);
}

TEST(NeighborGrouping, SplitCountIsCeilDegreeOverBound) {
  const Csr g = testing::star_graph(100);
  const GroupedTasks r = neighbor_group_tasks(g, 16);
  int tasks_for_0 = 0;
  for (const Task& t : r.tasks) tasks_for_0 += (t.v == 0);
  EXPECT_EQ(tasks_for_0, (99 + 15) / 16);
}

TEST(NeighborGrouping, ZeroDegreeRowsStillGetATask) {
  const Csr g = testing::csr_from_edges(5, {{0, 1}});
  const GroupedTasks r = neighbor_group_tasks(g, 8);
  EXPECT_EQ(r.tasks.size(), 5u);  // every node appears (writes its output)
}

TEST(NeighborGrouping, HonorsCustomOrder) {
  const Csr g = testing::random_graph(20, 3.0, 2);
  std::vector<NodeId> order(20);
  std::iota(order.begin(), order.end(), 0);
  std::reverse(order.begin(), order.end());
  const GroupedTasks r = neighbor_group_tasks(g, 0, order);
  EXPECT_EQ(r.tasks.front().v, 19);
  EXPECT_EQ(r.tasks.back().v, 0);
  expect_exact_cover(g, r.tasks);
}

TEST(NeighborGrouping, GroupsOfOneRowStayContiguousUnderOrder) {
  const Csr g = testing::star_graph(40);
  std::vector<NodeId> order(40);
  std::iota(order.begin(), order.end(), 0);
  std::swap(order[0], order[39]);  // hub scheduled last
  const GroupedTasks r = neighbor_group_tasks(g, 8, order);
  // The hub's split tasks are the trailing ones and contiguous.
  const std::size_t first_hub =
      static_cast<std::size_t>(std::find_if(r.tasks.begin(), r.tasks.end(),
                                            [](const Task& t) { return t.v == 0; }) -
                               r.tasks.begin());
  for (std::size_t i = first_hub; i < r.tasks.size(); ++i) EXPECT_EQ(r.tasks[i].v, 0);
}

TEST(CandidateBounds, MultiplesOf16UpToTenXAvg) {
  const Csr g = testing::random_graph(100, 8.0, 3);
  const auto bounds = candidate_group_bounds(g);
  ASSERT_FALSE(bounds.empty());
  const double avg = static_cast<double>(g.num_edges()) / 100.0;
  for (EdgeId b : bounds) {
    EXPECT_EQ(b % 16, 0);
    EXPECT_LE(b, static_cast<EdgeId>(avg * 10.0) + 16);
  }
}

TEST(CandidateBounds, CapAtMaxCandidates) {
  const Csr g = testing::star_graph(2000);  // avg ~1 but let's use dense
  const Csr dense = testing::random_graph(200, 100.0, 4);
  EXPECT_LE(candidate_group_bounds(dense, 20).size(), 20u);
  EXPECT_LE(candidate_group_bounds(g, 5).size(), 5u);
}

TEST(NeighborGrouping, TaskSizeHelper) {
  Task t{3, 10, 25};
  EXPECT_EQ(t.size(), 15);
}

}  // namespace
}  // namespace gnnbridge::core
