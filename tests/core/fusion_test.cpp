#include "core/fusion/fusion_pass.hpp"

#include <gtest/gtest.h>

namespace gnnbridge::core {
namespace {

TEST(OpGraph, GatLayerHasTenOps) {
  GatGraphIds ids{};
  const OpGraph g = build_gat_layer(&ids);
  EXPECT_EQ(g.size(), 10);
  EXPECT_EQ(g.op(ids.aggregate).kind, OpKind::kAggregate);
  EXPECT_EQ(g.op(ids.div).inputs.size(), 2u);
}

TEST(OpGraph, ConsumersFollowEdges) {
  GatGraphIds ids{};
  const OpGraph g = build_gat_layer(&ids);
  const auto consumers = g.consumers(ids.exp);
  // exp feeds segment_sum and the division.
  EXPECT_EQ(consumers.size(), 2u);
}

TEST(OpDomain, Classification) {
  EXPECT_EQ(op_domain(OpKind::kGemm), Domain::kDense);
  EXPECT_EQ(op_domain(OpKind::kSegmentSum), Domain::kNodeScalar);
  EXPECT_EQ(op_domain(OpKind::kExp), Domain::kEdge);
  EXPECT_EQ(op_domain(OpKind::kAggregate), Domain::kNodeFeat);
}

TEST(VisibleRange, EdgeElementwiseChainsAreThreadLocal) {
  EXPECT_EQ(dep_range(OpKind::kUAddV, OpKind::kLeakyRelu, Partitioning::kWholeRow),
            VisibleRange::kThread);
  EXPECT_EQ(dep_range(OpKind::kLeakyRelu, OpKind::kExp, Partitioning::kSplitRows),
            VisibleRange::kThread);
}

TEST(VisibleRange, EdgeToSegmentReduceNeedsBlock) {
  EXPECT_EQ(dep_range(OpKind::kExp, OpKind::kSegmentSum, Partitioning::kWholeRow),
            VisibleRange::kBlock);
}

TEST(VisibleRange, SegmentSumPromotedToGlobalUnderSplit) {
  EXPECT_EQ(dep_range(OpKind::kSegmentSum, OpKind::kBroadcast, Partitioning::kWholeRow),
            VisibleRange::kBlock);
  EXPECT_EQ(dep_range(OpKind::kSegmentSum, OpKind::kBroadcast, Partitioning::kSplitRows),
            VisibleRange::kGlobal);
}

TEST(VisibleRange, DenseProducersAlwaysGlobal) {
  EXPECT_EQ(dep_range(OpKind::kGemm, OpKind::kAggregate, Partitioning::kWholeRow),
            VisibleRange::kGlobal);
  EXPECT_EQ(dep_range(OpKind::kRowDot, OpKind::kUAddV, Partitioning::kWholeRow),
            VisibleRange::kGlobal);
}

TEST(VisibleRange, MaterializedSoftmaxIsGlobal) {
  EXPECT_EQ(dep_range(OpKind::kEdgeDiv, OpKind::kAggregate, Partitioning::kWholeRow),
            VisibleRange::kGlobal);
}

TEST(VisibleRange, AggregateToEpilogueBlockVsGlobal) {
  EXPECT_EQ(dep_range(OpKind::kAggregate, OpKind::kBiasAct, Partitioning::kWholeRow),
            VisibleRange::kBlock);
  EXPECT_EQ(dep_range(OpKind::kAggregate, OpKind::kBiasAct, Partitioning::kSplitRows),
            VisibleRange::kGlobal);
}

TEST(LinearProperty, RewritesSoftmaxPattern) {
  GatGraphIds ids{};
  OpGraph g = build_gat_layer(&ids);
  EXPECT_TRUE(apply_linear_property(g));
  EXPECT_FALSE(g.op(ids.div).alive);
  EXPECT_FALSE(g.op(ids.broadcast).alive);
  EXPECT_EQ(g.op(ids.aggregate).postponed_scale, ids.seg_sum);
  // Aggregate now consumes the raw scores.
  EXPECT_EQ(g.op(ids.aggregate).inputs[0], ids.exp);
}

TEST(LinearProperty, NoPatternNoRewrite) {
  GcnGraphIds ids{};
  OpGraph g = build_gcn_layer(&ids);
  EXPECT_FALSE(apply_linear_property(g));
}

TEST(FusionPass, BaselineOpPerKernelWouldBeSeven) {
  // Sanity anchor: Listing 1 counts 7 graph ops.
  GatGraphIds ids{};
  const OpGraph g = build_gat_layer(&ids);
  int graph_ops = 0;
  for (int id : g.live_ops()) {
    const Domain d = op_domain(g.op(id).kind);
    if (d == Domain::kEdge || g.op(id).kind == OpKind::kSegmentSum ||
        g.op(id).kind == OpKind::kAggregate) {
      ++graph_ops;
    }
  }
  EXPECT_EQ(graph_ops, 7);
}

TEST(FusionPass, GatWholeRowWithLinearFusesGraphPhaseIntoOneKernel) {
  OpGraph g = build_gat_layer();
  const FusionPlan plan = fuse(g, Partitioning::kWholeRow, /*use_linear_property=*/true);
  EXPECT_TRUE(plan.postponed_scale);
  // [gemm], [att dots], [whole graph phase].
  EXPECT_EQ(num_kernels(plan), 3);
  EXPECT_GT(plan.num_adapters, 0);
}

TEST(FusionPass, GatSplitRowsWithLinearGivesTwoGraphKernels) {
  GatGraphIds ids{};
  OpGraph g = build_gat_layer(&ids);
  const FusionPlan plan = fuse(g, Partitioning::kSplitRows, /*use_linear_property=*/true);
  EXPECT_TRUE(plan.postponed_scale);
  // [gemm], [att dots], [score+segsum], [aggregate] — the paper's K1/K2.
  ASSERT_EQ(num_kernels(plan), 4);
  const auto& k1 = plan.groups[2].ops;
  EXPECT_NE(std::find(k1.begin(), k1.end(), ids.seg_sum), k1.end());
  const auto& k2 = plan.groups[3].ops;
  ASSERT_EQ(k2.size(), 1u);
  EXPECT_EQ(k2[0], ids.aggregate);
}

TEST(FusionPass, GatWithoutLinearKeepsExtraBarrier) {
  OpGraph with_linear = build_gat_layer();
  OpGraph without_linear = build_gat_layer();
  const FusionPlan p_lin = fuse(with_linear, Partitioning::kSplitRows, true);
  const FusionPlan p_nolin = fuse(without_linear, Partitioning::kSplitRows, false);
  EXPECT_GT(num_kernels(p_nolin), num_kernels(p_lin));
}

TEST(FusionPass, GcnFusesAggregationWithEpilogue) {
  GcnGraphIds ids{};
  OpGraph g = build_gcn_layer(&ids);
  const FusionPlan plan = fuse(g, Partitioning::kWholeRow, true);
  // [gemm], [aggregate + bias_act]: 3 ops -> 2 kernels.
  ASSERT_EQ(num_kernels(plan), 2);
  EXPECT_EQ(plan.groups[1].ops.size(), 2u);
}

TEST(FusionPass, GcnSplitRowsDefersEpilogue) {
  OpGraph g = build_gcn_layer();
  const FusionPlan plan = fuse(g, Partitioning::kSplitRows, true);
  EXPECT_EQ(num_kernels(plan), 3);
}

TEST(FusionPass, EveryLiveOpAppearsExactlyOnce) {
  OpGraph g = build_gat_layer();
  const FusionPlan plan = fuse(g, Partitioning::kSplitRows, true);
  std::vector<int> counts(static_cast<std::size_t>(g.size()), 0);
  for (const auto& grp : plan.groups) {
    for (int id : grp.ops) counts[static_cast<std::size_t>(id)]++;
  }
  for (int id = 0; id < g.size(); ++id) {
    EXPECT_EQ(counts[static_cast<std::size_t>(id)], g.op(id).alive ? 1 : 0) << id;
  }
}

TEST(FusionPass, GroupsRespectTopologicalOrder) {
  OpGraph g = build_gat_layer();
  const FusionPlan plan = fuse(g, Partitioning::kWholeRow, false);
  int last = -1;
  for (const auto& grp : plan.groups) {
    for (int id : grp.ops) {
      EXPECT_GT(id, last);
      last = id;
    }
  }
}

TEST(RangeName, Printable) {
  EXPECT_EQ(range_name(VisibleRange::kThread), "thread");
  EXPECT_EQ(range_name(VisibleRange::kGlobal), "global");
  EXPECT_EQ(op_name(OpKind::kSegmentSum), "segment_sum");
}

}  // namespace
}  // namespace gnnbridge::core
