// TelemetryRegistry + Prometheus exposition (DESIGN.md §13): lexicographic
// snapshot order, thread-safe recording, the observe_parallel ordered-fold
// determinism contract (byte-identical exposition at 1/2/8 host threads),
// and the text-format shape Prometheus scrapers expect.
#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "obs/prometheus.hpp"
#include "par/thread_pool.hpp"

namespace gnnbridge::obs {
namespace {

class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { TelemetryRegistry::instance().clear(); }
  void TearDown() override {
    TelemetryRegistry::instance().clear();
    par::set_max_threads(0);
  }
};

TEST_F(RegistryTest, SnapshotOrderIsLexicographicNotInsertion) {
  TelemetryRegistry& reg = TelemetryRegistry::instance();
  reg.counter_add("serve.zeta", 1);
  reg.counter_add("serve.alpha", 2);
  reg.counter_add("serve.mid", 3);
  reg.gauge_set("queue.b", 2.0);
  reg.gauge_set("queue.a", 1.0);
  reg.observe("lat.y", 4.0);
  reg.observe("lat.x", 8.0);

  const RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "serve.alpha");
  EXPECT_EQ(snap.counters[1].first, "serve.mid");
  EXPECT_EQ(snap.counters[2].first, "serve.zeta");
  ASSERT_EQ(snap.gauges.size(), 2u);
  EXPECT_EQ(snap.gauges[0].first, "queue.a");
  ASSERT_EQ(snap.histograms.size(), 2u);
  EXPECT_EQ(snap.histograms[0].first, "lat.x");
  EXPECT_EQ(snap.histograms[1].first, "lat.y");
}

TEST_F(RegistryTest, CountersAccumulateAndGaugesOverwrite) {
  TelemetryRegistry& reg = TelemetryRegistry::instance();
  reg.counter_add("c", 3);
  reg.counter_add("c", 4);
  EXPECT_EQ(reg.counter_value("c"), 7u);
  EXPECT_EQ(reg.counter_value("absent"), 0u);
  reg.gauge_set("g", 1.5);
  reg.gauge_set("g", 2.5);
  EXPECT_EQ(reg.gauge_value("g"), 2.5);
  EXPECT_EQ(reg.counter_count(), 1u);
  EXPECT_EQ(reg.gauge_count(), 1u);
}

TEST_F(RegistryTest, ConcurrentCounterAddsLoseNothing) {
  TelemetryRegistry& reg = TelemetryRegistry::instance();
  par::set_max_threads(8);
  par::parallel_chunks(10000, /*grain=*/64,
                       [&](std::size_t /*chunk*/, std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) {
                           reg.counter_add("parallel.adds", 1);
                         }
                       });
  EXPECT_EQ(reg.counter_value("parallel.adds"), 10000u);
}

TEST_F(RegistryTest, ObserveParallelIsByteIdenticalAt1_2_8Threads) {
  const auto value = [](std::size_t i) {
    return static_cast<double>(1 + (i * 131) % 100000);
  };
  std::string expected;
  for (int threads : {1, 2, 8}) {
    par::set_max_threads(threads);
    TelemetryRegistry::instance().clear();
    observe_parallel("par.latency", 5000, value, /*grain=*/128);
    const std::string rendered = render_prometheus(TelemetryRegistry::instance().snapshot());
    ASSERT_FALSE(rendered.empty());
    if (expected.empty()) {
      expected = rendered;
    } else {
      EXPECT_EQ(rendered, expected) << "at " << threads << " threads";
    }
  }
}

TEST_F(RegistryTest, PrometheusNamesAreSanitizedAndPrefixed) {
  EXPECT_EQ(prometheus_name("serve.job_cycles"), "gnnbridge_serve_job_cycles");
  EXPECT_EQ(prometheus_name("a-b c/d"), "gnnbridge_a_b_c_d");
}

TEST_F(RegistryTest, PrometheusExpositionHasTypedCumulativeSeries) {
  TelemetryRegistry& reg = TelemetryRegistry::instance();
  reg.counter_add("serve.jobs", 5);
  reg.gauge_set("serve.queue_depth", 3.0);
  // 1.9 lands in the [2^0.75, 2) bucket and 1000 in [2^9.75, 1024) — both
  // bucket uppers are exact powers of two, so the le labels are clean.
  reg.observe("serve.job_cycles", 1.9);
  reg.observe("serve.job_cycles", 1.9);
  reg.observe("serve.job_cycles", 1000.0);

  const std::string text = render_prometheus(reg.snapshot());
  EXPECT_NE(text.find("# TYPE gnnbridge_serve_jobs counter\n"
                      "gnnbridge_serve_jobs 5\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE gnnbridge_serve_queue_depth gauge\n"
                      "gnnbridge_serve_queue_depth 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE gnnbridge_serve_job_cycles histogram\n"), std::string::npos);
  // Bucket series are cumulative and end with the +Inf catch-all equal to
  // the total count, then _sum and _count.
  EXPECT_NE(text.find("gnnbridge_serve_job_cycles_bucket{le=\"2\"} 2\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("gnnbridge_serve_job_cycles_bucket{le=\"1024\"} 3\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("gnnbridge_serve_job_cycles_bucket{le=\"+Inf\"} 3\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("gnnbridge_serve_job_cycles_sum 1003.8\n"), std::string::npos) << text;
  EXPECT_NE(text.find("gnnbridge_serve_job_cycles_count 3\n"), std::string::npos) << text;
}

TEST_F(RegistryTest, ClearEmptiesEveryInstrumentKind) {
  TelemetryRegistry& reg = TelemetryRegistry::instance();
  reg.counter_add("c", 1);
  reg.gauge_set("g", 1.0);
  reg.observe("h", 1.0);
  reg.clear();
  EXPECT_EQ(reg.counter_count(), 0u);
  EXPECT_EQ(reg.gauge_count(), 0u);
  EXPECT_EQ(reg.histogram_count(), 0u);
  EXPECT_TRUE(render_prometheus(reg.snapshot()).empty());
}

}  // namespace
}  // namespace gnnbridge::obs
