// Prometheus text exposition (DESIGN.md §13/§15): label-value escaping
// per the exposition-format spec (backslash, double-quote, newline), the
// per-tenant SLO series, and the empty-snapshot behavior that makes
// appending the SLO block unconditionally safe.
#include "obs/prometheus.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/slo.hpp"

namespace gnnbridge::obs {
namespace {

TEST(PrometheusEscapeTest, PassesPlainValuesThrough) {
  EXPECT_EQ(prometheus_escape_label_value("tenant-a"), "tenant-a");
  EXPECT_EQ(prometheus_escape_label_value(""), "");
  EXPECT_EQ(prometheus_escape_label_value("utf8 σ ok"), "utf8 σ ok");
}

TEST(PrometheusEscapeTest, EscapesBackslashQuoteAndNewline) {
  EXPECT_EQ(prometheus_escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheus_escape_label_value("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(prometheus_escape_label_value("line1\nline2"), "line1\\nline2");
  // A value made entirely of specials: \ " \n -> \\ \" \n (6 chars).
  EXPECT_EQ(prometheus_escape_label_value("\\\"\n"), "\\\\\\\"\\n");
}

SloSnapshot snapshot_with(const std::string& tenant) {
  SloSnapshot snap;
  snap.enabled = true;
  TenantSlo row;
  row.tenant = tenant;
  row.requests = 10;
  row.good = 7;
  row.latency_violations = 2;
  row.failure_violations = 1;
  row.burn_rate = 1.5;
  row.budget_exhausted = true;
  snap.tenants.push_back(row);
  return snap;
}

TEST(PrometheusSloTest, RendersOneSeriesPerMetricPerTenant) {
  SloSnapshot snap = snapshot_with("t-steady");
  TenantSlo burst = snap.tenants[0];
  burst.tenant = "t-burst";
  burst.budget_exhausted = false;
  burst.burn_rate = 0.25;
  snap.tenants.push_back(burst);

  const std::string out = render_prometheus_slo(snap);
  EXPECT_NE(out.find("# TYPE gnnbridge_slo_requests counter\n"
                     "gnnbridge_slo_requests{tenant=\"t-steady\"} 10\n"
                     "gnnbridge_slo_requests{tenant=\"t-burst\"} 10\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("gnnbridge_slo_good{tenant=\"t-steady\"} 7"), std::string::npos);
  EXPECT_NE(out.find("gnnbridge_slo_latency_violations{tenant=\"t-steady\"} 2"),
            std::string::npos);
  EXPECT_NE(out.find("gnnbridge_slo_failure_violations{tenant=\"t-steady\"} 1"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE gnnbridge_slo_burn_rate gauge\n"
                     "gnnbridge_slo_burn_rate{tenant=\"t-steady\"} 1.5\n"
                     "gnnbridge_slo_burn_rate{tenant=\"t-burst\"} 0.25\n"),
            std::string::npos);
  EXPECT_NE(out.find("gnnbridge_slo_budget_exhausted{tenant=\"t-steady\"} 1"),
            std::string::npos);
  EXPECT_NE(out.find("gnnbridge_slo_budget_exhausted{tenant=\"t-burst\"} 0"),
            std::string::npos);
}

TEST(PrometheusSloTest, EscapesHostileTenantNamesInLabels) {
  // Tenant and model names are caller-supplied strings; quotes,
  // backslashes and newlines must not corrupt the exposition line.
  const std::string out =
      render_prometheus_slo(snapshot_with("evil\"t\\name\nwith specials"));
  EXPECT_NE(out.find("{tenant=\"evil\\\"t\\\\name\\nwith specials\"}"), std::string::npos)
      << out;
  // The raw newline must never appear inside a label value.
  EXPECT_EQ(out.find("name\nwith"), std::string::npos);
}

TEST(PrometheusSloTest, DisabledOrEmptySnapshotRendersNothing) {
  EXPECT_EQ(render_prometheus_slo(SloSnapshot{}), "");
  SloSnapshot disabled = snapshot_with("t");
  disabled.enabled = false;
  EXPECT_EQ(render_prometheus_slo(disabled), "");
  SloSnapshot empty;
  empty.enabled = true;
  EXPECT_EQ(render_prometheus_slo(empty), "");
}

}  // namespace
}  // namespace gnnbridge::obs
