// LogHistogram: the deterministic aggregation primitive of the telemetry
// registry (DESIGN.md §13). Pins the quarter-octave bucket mapping, the
// quantile contract (bucket upper bound clamped to the exact extrema) and
// the merge-order equivalence the ordered-fold discipline relies on.
#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace gnnbridge::obs {
namespace {

TEST(LogHistogramTest, BucketMappingPinsTheQuarterOctaveLayout) {
  // Everything below 1 clamps into bucket 0, including garbage.
  EXPECT_EQ(LogHistogram::bucket_of(0.0), 0);
  EXPECT_EQ(LogHistogram::bucket_of(-3.0), 0);
  EXPECT_EQ(LogHistogram::bucket_of(0.5), 0);
  EXPECT_EQ(LogHistogram::bucket_of(std::numeric_limits<double>::quiet_NaN()), 0);
  // Everything at or above 2^64 clamps into the top bucket.
  EXPECT_EQ(LogHistogram::bucket_of(std::ldexp(1.0, 64)), LogHistogram::kBuckets - 1);
  EXPECT_EQ(LogHistogram::bucket_of(std::numeric_limits<double>::infinity()),
            LogHistogram::kBuckets - 1);

  // One octave = four buckets: [1, 2) maps to buckets 0..3.
  EXPECT_EQ(LogHistogram::bucket_of(1.0), 0);
  EXPECT_EQ(LogHistogram::bucket_of(1.18), 0);   // < 2^0.25
  EXPECT_EQ(LogHistogram::bucket_of(1.2), 1);    // >= 2^0.25
  EXPECT_EQ(LogHistogram::bucket_of(1.5), 2);    // >= 2^0.5
  EXPECT_EQ(LogHistogram::bucket_of(1.7), 3);    // >= 2^0.75
  EXPECT_EQ(LogHistogram::bucket_of(2.0), 4);
  // Powers of two land on the first bucket of their octave.
  EXPECT_EQ(LogHistogram::bucket_of(1024.0), 40);
}

TEST(LogHistogramTest, BucketUppersAreMonotonicAndContainTheirValues) {
  for (int b = 0; b + 1 < LogHistogram::kBuckets; ++b) {
    EXPECT_LT(LogHistogram::bucket_upper(b), LogHistogram::bucket_upper(b + 1)) << b;
  }
  // Every sampled value sits strictly below its bucket's upper bound, and
  // at or above the previous bucket's.
  for (double v : {1.0, 1.3, 2.0, 7.5, 100.0, 1024.0, 1e6, 1e12, 1e18}) {
    const int b = LogHistogram::bucket_of(v);
    EXPECT_LT(v, LogHistogram::bucket_upper(b)) << v;
    if (b > 0) EXPECT_GE(v, LogHistogram::bucket_upper(b - 1)) << v;
  }
}

TEST(LogHistogramTest, SingleObservationReportsItselfAtEveryQuantile) {
  LogHistogram h;
  h.observe(1024.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1024.0);
  EXPECT_EQ(h.max(), 1024.0);
  // The bucket upper bound (~1217.7) clamps to the tracked max.
  EXPECT_EQ(h.quantile(0.5), 1024.0);
  EXPECT_EQ(h.quantile(0.99), 1024.0);
}

TEST(LogHistogramTest, QuantilesAreOrderedAndWithinAQuarterOctave) {
  LogHistogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 1000.0);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
  EXPECT_LE(s.p99, s.max);
  // A quantile is the upper bound of the bucket holding the ranked
  // observation: never below the true value, never more than one
  // quarter-octave (2^0.25) above it.
  const double kQuarterOctave = std::pow(2.0, 0.25);
  EXPECT_GE(s.p50, 500.0);
  EXPECT_LE(s.p50, 500.0 * kQuarterOctave);
  EXPECT_GE(s.p90, 900.0);
  EXPECT_LE(s.p90, 900.0 * kQuarterOctave);
  EXPECT_GE(s.p99, 990.0);
  EXPECT_LE(s.p99, 990.0 * kQuarterOctave);
}

TEST(LogHistogramTest, SnapshotBucketsAreAscendingNonEmptyAndSumToCount) {
  LogHistogram h;
  for (double v : {1.0, 1.0, 3.0, 3.0, 3.0, 777.0}) h.observe(v);
  const HistogramSnapshot s = h.snapshot();
  std::uint64_t total = 0;
  double prev_le = 0.0;
  for (const auto& [le, count] : s.buckets) {
    EXPECT_GT(le, prev_le);
    EXPECT_GT(count, 0u);
    prev_le = le;
    total += count;
  }
  EXPECT_EQ(total, s.count);
}

TEST(LogHistogramTest, MergeMatchesSequentialObservationAcrossGroupings) {
  // Integer-valued doubles sum exactly in any association, so any shard
  // grouping folded in order must reproduce the sequential histogram
  // field for field — the contract observe_parallel builds on.
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) values.push_back(static_cast<double>(1 + (i * 37) % 4096));

  LogHistogram sequential;
  for (double v : values) sequential.observe(v);

  for (std::size_t shards : {1u, 3u, 7u, 16u}) {
    std::vector<LogHistogram> parts(shards);
    for (std::size_t i = 0; i < values.size(); ++i) {
      parts[i / ((values.size() + shards - 1) / shards)].observe(values[i]);
    }
    LogHistogram folded;
    for (const LogHistogram& part : parts) folded.merge(part);
    EXPECT_EQ(folded.count(), sequential.count()) << shards;
    EXPECT_EQ(folded.sum(), sequential.sum()) << shards;
    EXPECT_EQ(folded.min(), sequential.min()) << shards;
    EXPECT_EQ(folded.max(), sequential.max()) << shards;
    EXPECT_EQ(folded.snapshot().buckets, sequential.snapshot().buckets) << shards;
  }
}

TEST(LogHistogramTest, ClearResetsToEmpty) {
  LogHistogram h;
  h.observe(5.0);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_TRUE(h.snapshot().buckets.empty());
}

TEST(LogHistogramTest, EmptyHistogramContractIsAllZeros) {
  // The documented empty-histogram contract (histogram.hpp): with
  // count == 0 every headline statistic is exactly 0 — never NaN, never a
  // sentinel — and consumers tell "no data" apart by count alone. The
  // schema validator enforces the same shape on exported documents.
  const HistogramSnapshot snap = LogHistogram().snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0.0);
  EXPECT_EQ(snap.min, 0.0);
  EXPECT_EQ(snap.max, 0.0);
  EXPECT_EQ(snap.p50, 0.0);
  EXPECT_EQ(snap.p90, 0.0);
  EXPECT_EQ(snap.p99, 0.0);
  EXPECT_TRUE(snap.buckets.empty());
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(LogHistogram().quantile(q), 0.0) << q;
  }
}

}  // namespace
}  // namespace gnnbridge::obs
