// Per-tenant SLO tracker (DESIGN.md §15): disjoint latency/failure
// violation classification, deterministic tumbling sim-time windows keyed
// by arrival stamp, finite error-budget burn rates, the once-per-window
// budget_exhausted edge, the v7 `slo` JSON block, and the journal
// round-trip of `slo_violation` events.
#include "obs/slo.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/journal.hpp"
#include "prof/critical_path.hpp"
#include "prof/json_writer.hpp"

namespace gnnbridge::obs {
namespace {

class SloTest : public ::testing::Test {
 protected:
  void SetUp() override { SloTracker::instance().clear(); }
  void TearDown() override { SloTracker::instance().clear(); }
};

SloConfig objectives(double latency, double success, double window) {
  SloConfig cfg;
  cfg.latency_objective_cycles = latency;
  cfg.success_objective = success;
  cfg.window_cycles = window;
  return cfg;
}

TEST_F(SloTest, InactiveByDefaultAndRecordIsANoOp) {
  SloTracker& t = SloTracker::instance();
  EXPECT_FALSE(t.enabled());
  const SloOutcome out = t.record("tenant", 0.0, 1e9, false);
  EXPECT_FALSE(out.failure_violation);
  EXPECT_TRUE(t.snapshot().tenants.empty());
}

TEST_F(SloTest, ViolationsAreDisjointAndGoodPlusViolationsSumToRequests) {
  SloTracker& t = SloTracker::instance();
  t.configure(objectives(100.0, 0.5, 0.0));
  // Failure trumps latency: a failed request that was also late counts as
  // a failure violation only.
  EXPECT_TRUE(t.record("a", 0.0, 500.0, false).failure_violation);
  EXPECT_FALSE(t.record("a", 0.0, 500.0, false).latency_violation);
  EXPECT_TRUE(t.record("a", 0.0, 101.0, true).latency_violation);
  EXPECT_FALSE(t.record("a", 0.0, 100.0, true).latency_violation);  // at objective = good

  const SloSnapshot snap = t.snapshot();
  ASSERT_EQ(snap.tenants.size(), 1u);
  const TenantSlo& row = snap.tenants[0];
  EXPECT_EQ(row.requests, 4u);
  EXPECT_EQ(row.good, 1u);
  EXPECT_EQ(row.failure_violations, 2u);
  EXPECT_EQ(row.latency_violations, 1u);
  EXPECT_EQ(row.good + row.latency_violations + row.failure_violations, row.requests);
}

TEST_F(SloTest, ZeroLatencyObjectiveDisablesTheLatencyCheck) {
  SloTracker& t = SloTracker::instance();
  t.configure(objectives(0.0, 0.9, 0.0));
  EXPECT_FALSE(t.record("a", 0.0, 1e18, true).latency_violation);
  EXPECT_EQ(t.snapshot().tenants[0].good, 1u);
}

TEST_F(SloTest, WindowMembershipIsAPureFunctionOfArrival) {
  SloTracker& t = SloTracker::instance();
  t.configure(objectives(0.0, 0.5, 1000.0));
  EXPECT_EQ(t.record("a", 0.0, 1.0, true).window_index, 0u);
  EXPECT_EQ(t.record("a", 999.0, 1.0, true).window_index, 0u);
  EXPECT_EQ(t.record("a", 1000.0, 1.0, true).window_index, 1u);
  EXPECT_EQ(t.record("a", 4500.0, 1.0, true).window_index, 4u);

  const SloSnapshot snap = t.snapshot();
  const TenantSlo& row = snap.tenants[0];
  EXPECT_EQ(row.windows, 3u);       // windows 0, 1, 4 saw traffic
  EXPECT_EQ(row.window_index, 4u);  // current = highest index
  EXPECT_EQ(row.window_requests, 1u);
}

TEST_F(SloTest, SnapshotIsIndependentOfRecordOrder) {
  SloTracker& t = SloTracker::instance();
  t.configure(objectives(100.0, 0.5, 1000.0));
  t.record("b", 1500.0, 50.0, true);
  t.record("a", 200.0, 500.0, true);
  t.record("a", 1200.0, 50.0, false);
  const SloSnapshot fwd = t.snapshot();

  t.clear();
  t.configure(objectives(100.0, 0.5, 1000.0));
  t.record("a", 1200.0, 50.0, false);
  t.record("b", 1500.0, 50.0, true);
  t.record("a", 200.0, 500.0, true);
  const SloSnapshot rev = t.snapshot();

  std::string fwd_json, rev_json;
  {
    prof::JsonWriter w(&fwd_json);
    write_slo_json(w, fwd);
  }
  {
    prof::JsonWriter w(&rev_json);
    write_slo_json(w, rev);
  }
  EXPECT_EQ(fwd_json, rev_json);
  ASSERT_EQ(fwd.tenants.size(), 2u);
  EXPECT_EQ(fwd.tenants[0].tenant, "a");  // lexicographic order
  EXPECT_EQ(fwd.tenants[1].tenant, "b");
}

TEST_F(SloTest, BurnRateIsViolationsOverErrorBudgetAndAlwaysFinite) {
  SloTracker& t = SloTracker::instance();
  t.configure(objectives(0.0, 0.5, 0.0));  // budget: half of the window
  for (int i = 0; i < 8; ++i) t.record("a", 0.0, 1.0, true);
  t.record("a", 0.0, 1.0, false);
  t.record("a", 0.0, 1.0, false);
  // 2 violations against a budget of 0.5 * 10 = 5 requests -> burn 0.4.
  EXPECT_DOUBLE_EQ(t.snapshot().tenants[0].burn_rate, 0.4);

  // A 100% objective has zero budget; the burn rate degrades to the raw
  // violation count instead of dividing by zero.
  t.clear();
  t.configure(objectives(0.0, 1.0, 0.0));
  t.record("a", 0.0, 1.0, true);
  t.record("a", 0.0, 1.0, false);
  const SloSnapshot snap = t.snapshot();
  const TenantSlo& row = snap.tenants[0];
  EXPECT_DOUBLE_EQ(row.burn_rate, 1.0);
  EXPECT_TRUE(row.budget_exhausted);
}

TEST_F(SloTest, BudgetExhaustedFiresOncePerWindowOnTheCrossingRequest) {
  SloTracker& t = SloTracker::instance();
  t.configure(objectives(0.0, 0.5, 1000.0));
  t.record("a", 0.0, 1.0, true);
  t.record("a", 0.0, 1.0, true);
  // Two good requests. The budget is half of the window's requests so
  // far, so violations run 1>1.5? no, 2>2.0? no, 3>2.5? yes — the third
  // violation crosses; later ones must NOT re-fire (the window latches).
  EXPECT_FALSE(t.record("a", 0.0, 1.0, false).budget_exhausted_now);
  EXPECT_FALSE(t.record("a", 0.0, 1.0, false).budget_exhausted_now);
  EXPECT_TRUE(t.record("a", 0.0, 1.0, false).budget_exhausted_now);
  EXPECT_FALSE(t.record("a", 0.0, 1.0, false).budget_exhausted_now);
  EXPECT_TRUE(t.snapshot().tenants[0].budget_exhausted);
  // A new window gets a fresh budget and its own edge: its very first
  // violation (1 > 0.5) exhausts it again.
  EXPECT_TRUE(t.record("a", 1500.0, 1.0, false).budget_exhausted_now);
}

TEST_F(SloTest, WriteSloJsonEmitsTheV7BlockShape) {
  SloTracker& t = SloTracker::instance();
  t.configure(objectives(100.0, 0.75, 50.0));
  t.record("tenant-a", 10.0, 500.0, true);  // latency violation
  std::string json;
  {
    prof::JsonWriter w(&json);
    write_slo_json(w, t.snapshot());
  }
  EXPECT_EQ(json,
            "{\"enabled\":true,\"latency_objective_cycles\":100,"
            "\"success_objective\":0.75,\"window_cycles\":50,"
            "\"tenants\":[{\"tenant\":\"tenant-a\",\"requests\":1,\"good\":0,"
            "\"latency_violations\":1,\"failure_violations\":0,\"violations\":1,"
            "\"windows\":1,\"window_index\":0,\"window_requests\":1,"
            "\"window_violations\":1,\"burn_rate\":4,\"budget_exhausted\":true}]}");
}

TEST_F(SloTest, ClearDisarmsAndResetsTheConfig) {
  SloTracker& t = SloTracker::instance();
  t.configure(objectives(1.0, 0.5, 2.0));
  t.record("a", 0.0, 10.0, true);
  t.clear();
  EXPECT_FALSE(t.enabled());
  EXPECT_EQ(t.config().latency_objective_cycles, 0.0);
  EXPECT_EQ(t.config().success_objective, 0.99);
  EXPECT_TRUE(t.snapshot().tenants.empty());
}

TEST_F(SloTest, SloViolationEventsRoundTripThroughTheJournal) {
  EventJournal& journal = EventJournal::instance();
  journal.clear();
  journal.set_enabled(true);

  JournalEvent ev;
  ev.request_id = "req-0-3";
  ev.type = "slo_violation";
  ev.key = "tenant \"a\"\\burst";  // escaping must survive the round trip
  ev.code = "budget_exhausted";
  ev.detail = "window 2 error budget exhausted";
  ev.attempt = 2;
  ev.cycles = 1234.5;
  journal.append(ev);

  const std::string jsonl = journal.to_jsonl();
  const auto parsed = prof::parse_journal_jsonl(jsonl);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  ASSERT_EQ(parsed->size(), 1u);
  const JournalEvent& back = (*parsed)[0];
  EXPECT_EQ(back.seq, 0u);
  EXPECT_EQ(back.request_id, ev.request_id);
  EXPECT_EQ(back.type, "slo_violation");
  EXPECT_EQ(back.key, ev.key);
  EXPECT_EQ(back.code, ev.code);
  EXPECT_EQ(back.detail, ev.detail);
  EXPECT_EQ(back.attempt, 2u);
  EXPECT_DOUBLE_EQ(back.cycles, 1234.5);

  journal.set_enabled(false);
  journal.clear();
}

}  // namespace
}  // namespace gnnbridge::obs
