// Request-scoped event journal (DESIGN.md §13): sequential seq assignment,
// JSONL shape, and the crash-safe file write (whole document to a sibling
// .tmp, atomic rename — the same kill-mid-write contract as the metrics
// and trace artifacts, simulated with a real fork()).
#include "obs/journal.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/request.hpp"
#include "prof/json_reader.hpp"
#include "rt/status.hpp"

namespace gnnbridge::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool file_exists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return in.good();
}

// Forks; the child writes `garbage` to `path` and dies without renaming —
// a crash between the temp-file write and the rename.
void crash_while_writing(const std::string& path, const std::string& garbage) {
  const pid_t pid = fork();
  ASSERT_NE(pid, -1) << "fork failed";
  if (pid == 0) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f) {
      std::fwrite(garbage.data(), 1, garbage.size(), f);
      std::fflush(f);
    }
    _exit(0);  // no atexit hooks, no gtest teardown: die like a crash
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
}

JournalEvent sample_event(const std::string& req, const std::string& type) {
  JournalEvent ev;
  ev.request_id = req;
  ev.type = type;
  ev.key = "gcn/0000000000000000";
  ev.code = "OK";
  ev.attempt = 1;
  ev.cycles = 123.5;
  return ev;
}

class JournalTest : public ::testing::Test {
 protected:
  // append() only stores while the journal is enabled (disabled appends
  // just feed the flight recorder), so the storage tests arm it here.
  void SetUp() override {
    EventJournal::instance().clear();
    EventJournal::instance().set_enabled(true);
  }
  void TearDown() override {
    EventJournal::instance().clear();
    EventJournal::instance().set_enabled(EventJournal::env_path() != nullptr);
  }
};

TEST_F(JournalTest, AppendAssignsContiguousSeqAndClearResets) {
  EventJournal& journal = EventJournal::instance();
  EXPECT_EQ(journal.append(sample_event("req-a", "admission")), 0u);
  EXPECT_EQ(journal.append(sample_event("req-a", "attempt")), 1u);
  EXPECT_EQ(journal.append(sample_event("req-b", "outcome")), 2u);
  EXPECT_EQ(journal.size(), 3u);
  const auto events = journal.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[2].seq, 2u);
  EXPECT_EQ(events[2].request_id, "req-b");

  journal.clear();
  EXPECT_EQ(journal.size(), 0u);
  EXPECT_EQ(journal.append(sample_event("req-c", "outcome")), 0u)
      << "clear() must reset the sequence counter";
}

TEST_F(JournalTest, JsonlLinesParseAndRoundTripEveryField) {
  EventJournal& journal = EventJournal::instance();
  JournalEvent ev = sample_event("req-42", "backoff");
  ev.detail = "quoted \"detail\"";
  ev.attempt = 2;
  ev.cycles = 4096.0;
  journal.append(ev);
  journal.append(sample_event("req-43", "degradation"));

  const std::string jsonl = journal.to_jsonl();
  std::istringstream lines(jsonl);
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    auto parsed = prof::parse_json(line);
    ASSERT_TRUE(parsed.ok()) << parsed.status().to_string() << "\n" << line;
    EXPECT_EQ(parsed->uint_or("seq", 999), n);
    ++n;
  }
  EXPECT_EQ(n, 2u);

  auto first = prof::parse_json(jsonl.substr(0, jsonl.find('\n')));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->str_or("req", ""), "req-42");
  EXPECT_EQ(first->str_or("type", ""), "backoff");
  EXPECT_EQ(first->str_or("key", ""), "gcn/0000000000000000");
  EXPECT_EQ(first->str_or("code", ""), "OK");
  EXPECT_EQ(first->str_or("detail", ""), "quoted \"detail\"");
  EXPECT_EQ(first->uint_or("attempt", 0), 2u);
  EXPECT_EQ(first->num_or("cycles", 0.0), 4096.0);
}

TEST_F(JournalTest, WriteFileSurvivesAKillMidWrite) {
  EventJournal& journal = EventJournal::instance();
  journal.append(sample_event("req-a", "admission"));
  journal.append(sample_event("req-a", "outcome"));
  const std::string path = ::testing::TempDir() + "journal_crash.jsonl";
  ASSERT_TRUE(journal.write_file(path).ok());
  const std::string good = read_file(path);
  ASSERT_FALSE(good.empty());

  // The writer dies after staging half a journal in the temp file. The
  // target must still hold the previous complete journal.
  crash_while_writing(path + ".tmp", "{\"seq\":0,\"req\":\"req-");
  EXPECT_EQ(read_file(path), good) << "kill mid-write corrupted the journal";

  // The next write replaces the stale temp file and the target atomically.
  ASSERT_TRUE(journal.write_file(path).ok());
  EXPECT_EQ(read_file(path), good);
  EXPECT_FALSE(file_exists(path + ".tmp"));
}

TEST_F(JournalTest, WriteFailureCarriesThePath) {
  EventJournal& journal = EventJournal::instance();
  journal.append(sample_event("req-a", "outcome"));
  const std::string path = ::testing::TempDir() + "no_such_dir/journal.jsonl";
  const rt::Status status = journal.write_file(path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), rt::StatusCode::kUnavailable);
  ASSERT_FALSE(status.context().empty());
  EXPECT_NE(status.context().back().find(path), std::string::npos)
      << "context frame must name the target path: " << status.to_string();
  EXPECT_FALSE(file_exists(path));
}

TEST_F(JournalTest, RequestScopeNestsAndRestores) {
  EXPECT_EQ(current_request_id(), "");
  {
    const std::string outer = "req-outer";
    RequestScope outer_scope(outer);
    EXPECT_EQ(current_request_id(), "req-outer");
    {
      const std::string inner = "req-inner";
      RequestScope inner_scope(inner);
      EXPECT_EQ(current_request_id(), "req-inner");
    }
    EXPECT_EQ(current_request_id(), "req-outer");
  }
  EXPECT_EQ(current_request_id(), "");
}

}  // namespace
}  // namespace gnnbridge::obs
