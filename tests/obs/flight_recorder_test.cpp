// Anomaly-triggered flight recorder (DESIGN.md §15): the always-on
// bounded ring fed by EventJournal::append, the four trigger kinds, the
// once-per-burst shed trigger, the crash-safe postmortem write, and the
// byte-determinism of the dumped document.
#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/journal.hpp"
#include "prof/json_reader.hpp"

namespace gnnbridge::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool file_exists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return in.good();
}

JournalEvent event(const std::string& type, const std::string& code = "",
                   const std::string& detail = "") {
  static std::uint64_t seq = 0;
  JournalEvent ev;
  ev.seq = seq++;
  ev.request_id = "req-" + std::to_string(ev.seq);
  ev.type = type;
  ev.key = "tenant-x";
  ev.code = code;
  ev.detail = detail;
  ev.cycles = 10.0;
  return ev;
}

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    unsetenv("GNNBRIDGE_FLIGHT_RECORDER");
    FlightRecorder::instance().clear();
    EventJournal::instance().clear();
  }
  void TearDown() override {
    FlightRecorder::instance().clear();
    EventJournal::instance().clear();
  }
};

TEST_F(FlightRecorderTest, RingIsAlwaysOnAndBoundedByCapacity) {
  FlightRecorder& fr = FlightRecorder::instance();
  EXPECT_FALSE(fr.armed());
  fr.set_capacity(4);
  for (int i = 0; i < 10; ++i) fr.record(event("attempt"));
  const auto ring = fr.ring();
  ASSERT_EQ(ring.size(), 4u);
  // Oldest entries evicted first: the ring holds the newest four.
  EXPECT_EQ(ring.back().seq, ring.front().seq + 3);
}

TEST_F(FlightRecorderTest, JournalAppendFeedsTheRingEvenWhenJournalDisabled) {
  EventJournal& journal = EventJournal::instance();
  EXPECT_FALSE(journal.enabled());
  journal.append(event("attempt"));
  EXPECT_EQ(FlightRecorder::instance().ring().size(), 1u);
  // Recorder-armed-only emission must not accumulate journal memory: the
  // bounded ring is the sole consumer of disabled-journal appends.
  EXPECT_EQ(journal.size(), 0u);
  EXPECT_EQ(journal.to_jsonl(), "");
}

TEST_F(FlightRecorderTest, TriggersAreCountedEvenWhenUnarmed) {
  FlightRecorder& fr = FlightRecorder::instance();
  fr.record(event("outcome", "DEADLINE_EXCEEDED", "timed_out"));
  EXPECT_EQ(fr.dump_count(), 1u);
  EXPECT_EQ(fr.last_trigger(), "deadline_miss");
  fr.record(event("breaker", "open", "threshold reached"));
  EXPECT_EQ(fr.dump_count(), 2u);
  EXPECT_EQ(fr.last_trigger(), "breaker_open");
  fr.record(event("slo_violation", "budget_exhausted", "window 0"));
  EXPECT_EQ(fr.dump_count(), 3u);
  EXPECT_EQ(fr.last_trigger(), "slo_budget_exhausted");
  // Non-anomalous events never trigger.
  fr.record(event("outcome", "OK", "ok"));
  fr.record(event("slo_violation", "latency", "late"));
  EXPECT_EQ(fr.dump_count(), 3u);
}

TEST_F(FlightRecorderTest, ShedBurstFiresExactlyOncePerBurst) {
  FlightRecorder& fr = FlightRecorder::instance();
  fr.record(event("shed"));
  fr.record(event("attempt"));
  fr.record(event("shed"));
  fr.record(event("shed"));
  EXPECT_EQ(fr.dump_count(), 0u) << "three sheds are not yet a burst";
  fr.record(event("shed"));
  EXPECT_EQ(fr.dump_count(), 1u);
  EXPECT_EQ(fr.last_trigger(), "shed_burst");
  // The fifth shed sees 5 sheds in the window — past the edge, no re-fire.
  fr.record(event("shed"));
  EXPECT_EQ(fr.dump_count(), 1u);
}

TEST_F(FlightRecorderTest, SustainedBurstStaysLatchedWhenCountReturnsToThreshold) {
  FlightRecorder& fr = FlightRecorder::instance();
  for (int i = 0; i < 4; ++i) fr.record(event("shed"));
  EXPECT_EQ(fr.dump_count(), 1u);
  // Twelve quiet events fill the 16-slot window, then one more shed ages
  // the oldest shed out — the in-window count returns to exactly the
  // threshold without ever draining below it. Still the same burst: the
  // latch must hold and no second dump may fire.
  for (int i = 0; i < 12; ++i) fr.record(event("attempt"));
  fr.record(event("shed"));
  EXPECT_EQ(fr.dump_count(), 1u) << "re-fired mid-burst on a threshold recross";
  // Once the window drains below the threshold the latch re-arms, and a
  // genuinely new burst produces its own dump.
  for (int i = 0; i < 16; ++i) fr.record(event("attempt"));
  for (int i = 0; i < 4; ++i) fr.record(event("shed"));
  EXPECT_EQ(fr.dump_count(), 2u);
  EXPECT_EQ(fr.last_trigger(), "shed_burst");
}

TEST_F(FlightRecorderTest, ArmedTriggerWritesAValidPostmortem) {
  const std::string path = ::testing::TempDir() + "fr_postmortem.json";
  std::remove(path.c_str());
  FlightRecorder& fr = FlightRecorder::instance();
  fr.arm(path);
  fr.record(event("attempt"));
  const JournalEvent trigger = event("outcome", "DEADLINE_EXCEEDED", "timed_out");
  fr.record(trigger);
  ASSERT_TRUE(file_exists(path));

  const std::string doc = read_file(path);
  const auto parsed = prof::parse_json(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->str_or("schema", ""), "gnnbridge-postmortem");
  EXPECT_EQ(parsed->uint_or("schema_version", 0), 1u);
  EXPECT_EQ(parsed->uint_or("dump_count", 0), 1u);
  const prof::JsonValue* trig = parsed->find("trigger");
  ASSERT_NE(trig, nullptr);
  EXPECT_EQ(trig->str_or("kind", ""), "deadline_miss");
  EXPECT_EQ(trig->uint_or("seq", 0), trigger.seq);
  const prof::JsonValue* events = parsed->find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items.size(), 2u);
  EXPECT_EQ(events->items.back().str_or("type", ""), "outcome");
  EXPECT_EQ(doc.back(), '\n');
  // No stray temp file left behind after the atomic rename.
  EXPECT_FALSE(file_exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST_F(FlightRecorderTest, UnarmedTriggerTouchesNothingOnDisk) {
  const std::string path = ::testing::TempDir() + "fr_unarmed.json";
  std::remove(path.c_str());
  FlightRecorder& fr = FlightRecorder::instance();
  fr.record(event("outcome", "DEADLINE_EXCEEDED", "timed_out"));
  EXPECT_EQ(fr.dump_count(), 1u);
  EXPECT_FALSE(file_exists(path));
}

TEST_F(FlightRecorderTest, PostmortemBytesAreAPureFunctionOfTheRing) {
  FlightRecorder& fr = FlightRecorder::instance();
  const JournalEvent a = event("attempt");
  const JournalEvent trigger = event("breaker", "open", "threshold reached");
  fr.record(a);
  fr.record(trigger);
  const std::string first = fr.postmortem_json("breaker_open", trigger);

  fr.clear();
  fr.record(a);
  fr.record(trigger);
  EXPECT_EQ(fr.postmortem_json("breaker_open", trigger), first);
  EXPECT_NE(first.find("\"schema\":\"gnnbridge-postmortem\""), std::string::npos);
  EXPECT_NE(first.find("\"kind\":\"breaker_open\""), std::string::npos);
}

TEST_F(FlightRecorderTest, RepeatedTriggersOverwriteWithTheLastAnomaly) {
  const std::string path = ::testing::TempDir() + "fr_overwrite.json";
  std::remove(path.c_str());
  FlightRecorder& fr = FlightRecorder::instance();
  fr.arm(path);
  fr.record(event("outcome", "DEADLINE_EXCEEDED", "timed_out"));
  fr.record(event("breaker", "open", "threshold reached"));
  const auto parsed = prof::parse_json(read_file(path));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->find("trigger")->str_or("kind", ""), "breaker_open");
  EXPECT_EQ(parsed->uint_or("dump_count", 0), 2u);
  std::remove(path.c_str());
}

TEST_F(FlightRecorderTest, ClearResetsStateAndDisarmsWithoutEnv) {
  FlightRecorder& fr = FlightRecorder::instance();
  fr.arm("/tmp/somewhere.json");
  fr.set_capacity(2);
  fr.record(event("outcome", "DEADLINE_EXCEEDED", "timed_out"));
  fr.clear();
  EXPECT_FALSE(fr.armed());
  EXPECT_EQ(fr.capacity(), kFlightRecorderDefaultCapacity);
  EXPECT_TRUE(fr.ring().empty());
  EXPECT_EQ(fr.dump_count(), 0u);
  EXPECT_EQ(fr.last_trigger(), "");
}

}  // namespace
}  // namespace gnnbridge::obs
