// Minimal JSON validity checker for tests.
//
// A recursive-descent parser that accepts exactly the JSON grammar
// (RFC 8259) and reports the first syntax error. Tests use it to assert
// that exporter output is well-formed without depending on an external
// JSON library. It validates only — no DOM is built; structural
// assertions on the content are done with string searches in the tests.
#pragma once

#include <cctype>
#include <cstddef>
#include <string>
#include <string_view>

namespace gnnbridge::testing {

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  /// True when the whole input is one valid JSON value (plus trailing
  /// whitespace). On failure `error()` describes the first problem.
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing garbage");
    return true;
  }

  const std::string& error() const { return error_; }
  std::size_t error_pos() const { return error_pos_; }

 private:
  bool fail(const char* what) {
    if (error_.empty()) {
      error_ = what;
      error_pos_ = pos_;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool value() {
    if (pos_ >= text_.size()) return fail("unexpected end");
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    if (!eat('{')) return fail("expected '{'");
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return fail("expected object key");
      skip_ws();
      if (!eat(':')) return fail("expected ':'");
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return fail("expected ',' or '}'");
    }
  }

  bool array() {
    if (!eat('[')) return fail("expected '['");
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return fail("expected ',' or ']'");
    }
  }

  bool string() {
    if (!eat('"')) return fail("expected '\"'");
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return fail("bad escape");
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return fail("bad \\u escape");
            }
          }
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' && e != 'n' &&
                   e != 'r' && e != 't') {
          return fail("bad escape character");
        }
        ++pos_;
      } else if (c < 0x20) {
        return fail("raw control character in string");
      } else {
        ++pos_;
      }
    }
    return fail("unterminated string");
  }

  bool number() {
    const std::size_t start = pos_;
    eat('-');
    if (eat('0')) {
      // no further digits allowed before the fraction
    } else {
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("expected digit");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (eat('.')) {
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("expected fraction digit");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("expected exponent digit");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
  std::size_t error_pos_ = 0;
};

/// Convenience: true when `text` parses as JSON.
inline bool json_valid(std::string_view text) { return JsonChecker(text).valid(); }

}  // namespace gnnbridge::testing
