// Shared test fixtures and builders.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "kernels/common.hpp"
#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

namespace gnnbridge::testing {

using graph::Coo;
using graph::Csr;
using graph::EdgeId;
using graph::NodeId;
using tensor::Index;
using tensor::Matrix;
using tensor::Rng;

/// Builds a CSR directly from an explicit (dst <- src) edge list.
inline Csr csr_from_edges(NodeId n, std::vector<std::pair<NodeId, NodeId>> dst_src) {
  Coo coo;
  coo.num_nodes = n;
  for (auto [d, s] : dst_src) coo.add_edge(s, d);
  return graph::csr_from_coo(graph::canonicalize(coo));
}

/// A directed path 0 <- 1 <- 2 <- ... (node v aggregates node v+1).
inline Csr path_graph(NodeId n) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  return csr_from_edges(n, std::move(edges));
}

/// A star: node 0 aggregates every other node.
inline Csr star_graph(NodeId n) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 1; v < n; ++v) edges.push_back({0, v});
  return csr_from_edges(n, std::move(edges));
}

/// Random symmetric graph (may include isolated nodes for small avg_deg).
inline Csr random_graph(NodeId n, double avg_degree, std::uint64_t seed) {
  Rng rng(seed);
  return graph::csr_from_coo(graph::erdos_renyi(n, avg_degree, rng));
}

/// Random matrix filled from `seed`.
inline Matrix random_matrix(Index rows, Index cols, std::uint64_t seed, float lo = -1.0f,
                            float hi = 1.0f) {
  Rng rng(seed);
  Matrix m(rows, cols);
  tensor::fill_uniform(m, rng, lo, hi);
  return m;
}

}  // namespace gnnbridge::testing
