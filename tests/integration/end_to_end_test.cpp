// End-to-end smoke: every (framework x model x dataset-shape) cell of the
// Figure 7 matrix runs and produces sane counters at test scale.
#include <gtest/gtest.h>

#include "baselines/dgl.hpp"
#include "baselines/pyg.hpp"
#include "baselines/roc.hpp"
#include "engine/engine.hpp"
#include "graph/datasets.hpp"

namespace gnnbridge {
namespace {

using baselines::Backend;
using kernels::ExecMode;
using models::ModelKind;

constexpr double kScale = 0.02;

struct Cell {
  graph::DatasetId dataset;
  ModelKind model;
};

class Figure7Cell : public ::testing::TestWithParam<Cell> {};

std::vector<std::unique_ptr<Backend>> all_backends() {
  std::vector<std::unique_ptr<Backend>> out;
  out.push_back(std::make_unique<baselines::DglBackend>());
  out.push_back(std::make_unique<baselines::PygBackend>());
  out.push_back(std::make_unique<baselines::RocBackend>());
  out.push_back(std::make_unique<engine::OptimizedEngine>());
  return out;
}

TEST_P(Figure7Cell, RunsOnAllSupportingBackends) {
  const Cell cell = GetParam();
  const graph::Dataset data = graph::make_dataset(cell.dataset, kScale);

  models::GcnConfig gcn_cfg;
  gcn_cfg.dims = {32, 16, 8};
  models::GatConfig gat_cfg;
  gat_cfg.dims = {32, 16, 8};
  models::SageLstmConfig sage_cfg;
  sage_cfg.steps = 4;
  const auto gcn_params = models::init_gcn(gcn_cfg, 1);
  const auto gat_params = models::init_gat(gat_cfg, 2);
  const auto sage_params = models::init_sage_lstm(sage_cfg, 3);
  const models::Matrix x32 = models::init_features(data.csr.num_nodes, 32, 4);
  const models::Matrix x_sage =
      models::init_features(data.csr.num_nodes, sage_cfg.in_feat, 5);

  for (const auto& backend : all_backends()) {
    if (!backend->supports(cell.model)) continue;
    baselines::RunResult r;
    switch (cell.model) {
      case ModelKind::kGcn:
        r = backend->run_gcn(data, {&gcn_cfg, &gcn_params, &x32}, ExecMode::kSimulateOnly,
                             sim::v100());
        break;
      case ModelKind::kGat:
        r = backend->run_gat(data, {&gat_cfg, &gat_params, &x32}, ExecMode::kSimulateOnly,
                             sim::v100());
        break;
      case ModelKind::kSageLstm:
        r = backend->run_sage_lstm(data, {&sage_cfg, &sage_params, &x_sage},
                                   ExecMode::kSimulateOnly, sim::v100());
        break;
    }
    if (r.oom) continue;  // paper-scale OOM cells are legitimate outcomes
    EXPECT_GT(r.ms, 0.0) << backend->name();
    EXPECT_GT(r.stats.num_launches(), 0) << backend->name();
    EXPECT_GT(r.stats.total_flops(), 0.0) << backend->name();
  }
}

std::vector<Cell> all_cells() {
  std::vector<Cell> cells;
  for (graph::DatasetId id : graph::kAllDatasets) {
    for (ModelKind m : {ModelKind::kGcn, ModelKind::kGat, ModelKind::kSageLstm}) {
      cells.push_back({id, m});
    }
  }
  return cells;
}

INSTANTIATE_TEST_SUITE_P(AllCells, Figure7Cell, ::testing::ValuesIn(all_cells()),
                         [](const ::testing::TestParamInfo<Cell>& info) {
                           return std::string(graph::dataset_name(info.param.dataset)) + "_" +
                                  std::string(models::model_name(info.param.model) ==
                                                      "GraphSAGE-LSTM"
                                                  ? "SAGE"
                                                  : models::model_name(info.param.model));
                         });

TEST(EndToEnd, UtilizationIsGpuRealistic) {
  // Sanity anchor from the paper's intro: baselines achieve well under 10%
  // of peak FLOPs on graph-heavy models.
  const graph::Dataset data = graph::make_dataset(graph::DatasetId::kCollab, 0.05);
  models::GatConfig cfg;
  cfg.dims = {64, 32};
  const auto params = models::init_gat(cfg, 6);
  const models::Matrix x = models::init_features(data.csr.num_nodes, 64, 7);
  baselines::DglBackend dgl;
  const auto r = dgl.run_gat(data, {&cfg, &params, &x}, ExecMode::kSimulateOnly, sim::v100());
  const sim::DeviceSpec spec = sim::v100();
  const double peak_gflops = spec.flops_per_cycle_per_block *
                             spec.total_block_slots() * spec.clock_ghz;  // ~14 TFLOPs
  EXPECT_LT(r.stats.gflops(spec), 0.10 * peak_gflops);
}

TEST(EndToEnd, DeterministicCounters) {
  const graph::Dataset data = graph::make_dataset(graph::DatasetId::kArxiv, 0.03);
  models::GcnConfig cfg;
  cfg.dims = {32, 16};
  const auto params = models::init_gcn(cfg, 8);
  const models::Matrix x = models::init_features(data.csr.num_nodes, 32, 9);
  engine::OptimizedEngine a, b;
  const auto ra = a.run_gcn(data, {&cfg, &params, &x}, ExecMode::kSimulateOnly, sim::v100());
  const auto rb = b.run_gcn(data, {&cfg, &params, &x}, ExecMode::kSimulateOnly, sim::v100());
  EXPECT_DOUBLE_EQ(ra.ms, rb.ms);
  EXPECT_EQ(ra.stats.total_misses(), rb.stats.total_misses());
}

TEST(EndToEnd, SimulateOnlyAgreesWithFullModeCounters) {
  // The trace is value-independent: counters must match across modes.
  const graph::Dataset data = graph::make_dataset(graph::DatasetId::kDdi, 0.1);
  models::GcnConfig cfg;
  cfg.dims = {16, 8};
  const auto params = models::init_gcn(cfg, 10);
  const models::Matrix x = models::init_features(data.csr.num_nodes, 16, 11);
  engine::OptimizedEngine e;
  const auto sim_only =
      e.run_gcn(data, {&cfg, &params, &x}, ExecMode::kSimulateOnly, sim::v100());
  const auto full = e.run_gcn(data, {&cfg, &params, &x}, ExecMode::kFull, sim::v100());
  EXPECT_DOUBLE_EQ(sim_only.ms, full.ms);
  EXPECT_EQ(sim_only.stats.total_misses(), full.stats.total_misses());
  EXPECT_EQ(sim_only.stats.num_launches(), full.stats.num_launches());
}

}  // namespace
}  // namespace gnnbridge
