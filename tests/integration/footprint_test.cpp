// Validates the paper-scale OOM model against Figure 7's published
// OOM/no-OOM pattern — every cell, every framework.
#include "baselines/footprint.hpp"

#include <gtest/gtest.h>

namespace gnnbridge::baselines {
namespace {

using graph::DatasetId;
using graph::paper_stats;

const models::GcnConfig kGcn{};  // {512,128,64,32}
const models::GatConfig kGat{};

bool pyg_gcn_oom(DatasetId id) { return pyg_footprint_gcn(paper_stats(id), kGcn) > kDeviceBytes; }
bool pyg_gat_oom(DatasetId id) { return pyg_footprint_gat(paper_stats(id), kGat) > kDeviceBytes; }
bool roc_gcn_oom(DatasetId id) { return roc_footprint_gcn(paper_stats(id), kGcn) > kDeviceBytes; }
bool dgl_gcn_oom(DatasetId id) { return dgl_footprint(paper_stats(id), kGcn) > kDeviceBytes; }
bool dgl_gat_oom(DatasetId id) { return dgl_footprint_gat(paper_stats(id), kGat) > kDeviceBytes; }

TEST(Footprint, DglNeverOoms) {
  for (DatasetId id : graph::kAllDatasets) {
    EXPECT_FALSE(dgl_gcn_oom(id)) << graph::dataset_name(id);
    EXPECT_FALSE(dgl_gat_oom(id)) << graph::dataset_name(id);
  }
}

TEST(Footprint, PygGcnOomPatternMatchesFigure7a) {
  EXPECT_FALSE(pyg_gcn_oom(DatasetId::kArxiv));
  EXPECT_FALSE(pyg_gcn_oom(DatasetId::kCollab));
  EXPECT_FALSE(pyg_gcn_oom(DatasetId::kCitation));
  EXPECT_FALSE(pyg_gcn_oom(DatasetId::kDdi));
  EXPECT_TRUE(pyg_gcn_oom(DatasetId::kProtein));
  EXPECT_FALSE(pyg_gcn_oom(DatasetId::kPpa));
  EXPECT_TRUE(pyg_gcn_oom(DatasetId::kReddit));
  EXPECT_TRUE(pyg_gcn_oom(DatasetId::kProducts));
}

TEST(Footprint, PygGatOomPatternMatchesFigure7b) {
  EXPECT_FALSE(pyg_gat_oom(DatasetId::kArxiv));
  EXPECT_FALSE(pyg_gat_oom(DatasetId::kCollab));
  EXPECT_TRUE(pyg_gat_oom(DatasetId::kCitation));
  EXPECT_FALSE(pyg_gat_oom(DatasetId::kDdi));
  EXPECT_TRUE(pyg_gat_oom(DatasetId::kProtein));
  EXPECT_TRUE(pyg_gat_oom(DatasetId::kPpa));
  EXPECT_TRUE(pyg_gat_oom(DatasetId::kReddit));
  EXPECT_TRUE(pyg_gat_oom(DatasetId::kProducts));
}

TEST(Footprint, RocGcnOomPatternMatchesFigure7a) {
  EXPECT_FALSE(roc_gcn_oom(DatasetId::kArxiv));
  EXPECT_FALSE(roc_gcn_oom(DatasetId::kCollab));
  EXPECT_TRUE(roc_gcn_oom(DatasetId::kCitation));
  EXPECT_FALSE(roc_gcn_oom(DatasetId::kDdi));
  EXPECT_FALSE(roc_gcn_oom(DatasetId::kProtein));
  EXPECT_FALSE(roc_gcn_oom(DatasetId::kPpa));
  EXPECT_TRUE(roc_gcn_oom(DatasetId::kReddit));
  EXPECT_TRUE(roc_gcn_oom(DatasetId::kProducts));
}

TEST(Footprint, ExpansionDominatesPygFootprint) {
  const auto paper = paper_stats(DatasetId::kReddit);
  const std::uint64_t pyg = pyg_footprint_gcn(paper, kGcn);
  const std::uint64_t dgl = dgl_footprint(paper, kGcn);
  EXPECT_GT(pyg, 10 * dgl);
}

TEST(Footprint, MonotoneInEdges) {
  auto small = paper_stats(DatasetId::kArxiv);
  auto big = small;
  big.num_edges *= 100;
  EXPECT_GT(pyg_footprint_gcn(big, kGcn), pyg_footprint_gcn(small, kGcn));
}

}  // namespace
}  // namespace gnnbridge::baselines
