// Partitioned execution (DESIGN.md §16): the sharded GCN/GAT pipelines
// must be bit-identical to the unsharded engine — same output floats, and
// a metrics document that is byte-identical at any host thread count —
// while pricing the per-layer ghost exchange as the inter-shard-traffic
// counters.
#include <gtest/gtest.h>

#include <string>

#include "engine/engine.hpp"
#include "graph/datasets.hpp"
#include "par/thread_pool.hpp"
#include "prof/metrics_json.hpp"
#include "tests/testing/util.hpp"

namespace gnnbridge {
namespace {

using engine::EngineConfig;
using engine::OptimizedEngine;
using kernels::ExecMode;

class ShardDeterminism : public ::testing::Test {
 protected:
  void TearDown() override { par::set_max_threads(0); }
};

struct Inputs {
  graph::Dataset collab = graph::make_dataset(graph::DatasetId::kCollab, 0.02);
  models::GcnConfig gcn_cfg;
  models::GatConfig gat_cfg;
  models::GcnParams gcn_params;
  models::GatParams gat_params;
  models::Matrix x;

  Inputs() {
    gcn_cfg.dims = {32, 16, 8};
    gat_cfg.dims = {32, 16};
    gcn_params = models::init_gcn(gcn_cfg, 1);
    gat_params = models::init_gat(gat_cfg, 2);
    x = models::init_features(collab.csr.num_nodes, 32, 4);
  }
};

const Inputs& inputs() {
  static const Inputs* in = new Inputs();
  return *in;
}

EngineConfig sharded_cfg(int k) {
  EngineConfig cfg;
  cfg.shards = k;
  return cfg;
}

// ---- Bit-identity: sharded kFull outputs equal the unsharded engine's,
// float for float (operator== on the backing vectors, no tolerance).

TEST_F(ShardDeterminism, GcnOutputBitIdenticalAtK4) {
  const Inputs& in = inputs();
  OptimizedEngine plain;
  OptimizedEngine sharded(sharded_cfg(4));
  const auto r0 = plain.run_gcn(in.collab, {&in.gcn_cfg, &in.gcn_params, &in.x}, ExecMode::kFull,
                                sim::v100());
  const auto r4 = sharded.run_gcn(in.collab, {&in.gcn_cfg, &in.gcn_params, &in.x},
                                  ExecMode::kFull, sim::v100());
  ASSERT_TRUE(r0.status.ok()) << r0.status.to_string();
  ASSERT_TRUE(r4.status.ok()) << r4.status.to_string();
  EXPECT_TRUE(r0.output == r4.output) << "sharded GCN output drifted from unsharded";
  EXPECT_EQ(sharded.shard_plan_cache_size(), 1u);
}

TEST_F(ShardDeterminism, GcnOutputBitIdenticalUnfused) {
  const Inputs& in = inputs();
  EngineConfig base;
  base.use_adapter = false;  // spmm + bias_add + relu path
  EngineConfig shard4 = base;
  shard4.shards = 4;
  OptimizedEngine plain(base);
  OptimizedEngine sharded(shard4);
  const auto r0 = plain.run_gcn(in.collab, {&in.gcn_cfg, &in.gcn_params, &in.x}, ExecMode::kFull,
                                sim::v100());
  const auto r4 = sharded.run_gcn(in.collab, {&in.gcn_cfg, &in.gcn_params, &in.x},
                                  ExecMode::kFull, sim::v100());
  ASSERT_TRUE(r0.status.ok());
  ASSERT_TRUE(r4.status.ok());
  EXPECT_TRUE(r0.output == r4.output);
}

TEST_F(ShardDeterminism, GatOutputBitIdenticalAtK4) {
  const Inputs& in = inputs();
  OptimizedEngine plain;
  OptimizedEngine sharded(sharded_cfg(4));
  const auto r0 = plain.run_gat(in.collab, {&in.gat_cfg, &in.gat_params, &in.x}, ExecMode::kFull,
                                sim::v100());
  const auto r4 = sharded.run_gat(in.collab, {&in.gat_cfg, &in.gat_params, &in.x},
                                  ExecMode::kFull, sim::v100());
  ASSERT_TRUE(r0.status.ok()) << r0.status.to_string();
  ASSERT_TRUE(r4.status.ok()) << r4.status.to_string();
  EXPECT_TRUE(r0.output == r4.output) << "sharded GAT output drifted from unsharded";
}

TEST_F(ShardDeterminism, GatOutputBitIdenticalWithoutLinearProperty) {
  const Inputs& in = inputs();
  EngineConfig base;
  base.use_linear = false;  // fused-without-postponement pipeline
  EngineConfig shard3 = base;
  shard3.shards = 3;
  OptimizedEngine plain(base);
  OptimizedEngine sharded(shard3);
  const auto r0 = plain.run_gat(in.collab, {&in.gat_cfg, &in.gat_params, &in.x}, ExecMode::kFull,
                                sim::v100());
  const auto r3 = sharded.run_gat(in.collab, {&in.gat_cfg, &in.gat_params, &in.x},
                                  ExecMode::kFull, sim::v100());
  ASSERT_TRUE(r0.status.ok());
  ASSERT_TRUE(r3.status.ok());
  EXPECT_TRUE(r0.output == r3.output);
}

// ---- Exchange pricing: the new counters are live and consistent.

TEST_F(ShardDeterminism, ExchangeCountersPriced) {
  const Inputs& in = inputs();
  OptimizedEngine plain;
  OptimizedEngine sharded(sharded_cfg(4));
  const auto r0 = plain.run_gcn(in.collab, {&in.gcn_cfg, &in.gcn_params, &in.x},
                                ExecMode::kSimulateOnly, sim::v100());
  const auto r4 = sharded.run_gcn(in.collab, {&in.gcn_cfg, &in.gcn_params, &in.x},
                                  ExecMode::kSimulateOnly, sim::v100());
  ASSERT_TRUE(r4.status.ok()) << r4.status.to_string();
  // Unsharded runs price no exchange.
  EXPECT_EQ(r0.stats.shards, 1);
  EXPECT_EQ(r0.stats.ghost_bytes, 0u);
  EXPECT_EQ(r0.stats.exchange_syncs, 0u);
  EXPECT_DOUBLE_EQ(r0.stats.exchange_cycles, 0.0);
  // Sharded: one exchange rendezvous per layer, nonzero ghost traffic,
  // exchange cycles folded into both the gap counter and the clock.
  EXPECT_EQ(r4.stats.shards, 4);
  EXPECT_EQ(r4.stats.exchange_syncs,
            static_cast<std::uint64_t>(in.gcn_cfg.dims.size() - 1));
  EXPECT_GT(r4.stats.ghost_bytes, 0u);
  EXPECT_GT(r4.stats.exchange_cycles, 0.0);
  EXPECT_LT(r4.stats.exchange_cycles, r4.stats.total_cycles);
  // SimulateOnly and kFull price identically (traces are value-blind).
  const auto rf = OptimizedEngine(sharded_cfg(4))
                      .run_gcn(in.collab, {&in.gcn_cfg, &in.gcn_params, &in.x}, ExecMode::kFull,
                               sim::v100());
  EXPECT_DOUBLE_EQ(rf.stats.total_cycles, r4.stats.total_cycles);
  EXPECT_EQ(rf.stats.ghost_bytes, r4.stats.ghost_bytes);
}

TEST_F(ShardDeterminism, ShardsClampToNodeCount) {
  // More shards than nodes: the plan clamps, the run still matches.
  const graph::Dataset tiny{.name = "tiny", .csr = testing::random_graph(12, 3.0, 9)};
  models::GcnConfig cfg;
  cfg.dims = {8, 4};
  const models::GcnParams params = models::init_gcn(cfg, 3);
  const models::Matrix x = models::init_features(tiny.csr.num_nodes, 8, 5);
  OptimizedEngine plain;
  OptimizedEngine sharded(sharded_cfg(64));
  const auto r0 = plain.run_gcn(tiny, {&cfg, &params, &x}, ExecMode::kFull, sim::v100());
  const auto rk = sharded.run_gcn(tiny, {&cfg, &params, &x}, ExecMode::kFull, sim::v100());
  ASSERT_TRUE(rk.status.ok()) << rk.status.to_string();
  EXPECT_TRUE(r0.output == rk.output);
  EXPECT_EQ(rk.stats.shards, 12);
}

// ---- Thread-count determinism: the full metrics document of a sharded
// run — every per-shard kernel record, every exchange counter, the gap
// attribution — must be byte-identical at 1, 2 and 8 host threads.

std::string run_sharded_and_serialize() {
  const Inputs& in = inputs();
  OptimizedEngine e(sharded_cfg(4));
  prof::MetricsSink& sink = prof::MetricsSink::instance();
  sink.clear();
  sink.configure("shard-determinism", 0.02);
  sink.set_meta(prof::MetaInfo{.git_sha = "fixed",
                               .timestamp = "2026-01-01T00:00:00Z",
                               .hostname = "fixed",
                               .scale_env = "0.02",
                               .threads = 0});
  const auto record = [&](const char* model, const baselines::RunResult& r) {
    EXPECT_TRUE(r.status.ok()) << model << ": " << r.status.to_string();
    sink.record({.label = std::string(model) + "/ours-sharded/" + in.collab.name,
                 .model = model,
                 .backend = "ours",
                 .dataset = in.collab.name,
                 .ms = r.ms,
                 .oom = r.oom,
                 .stats = r.stats,
                 .spec = sim::v100()});
  };
  record("gcn", e.run_gcn(in.collab, {&in.gcn_cfg, &in.gcn_params, &in.x},
                          ExecMode::kSimulateOnly, sim::v100()));
  record("gat", e.run_gat(in.collab, {&in.gat_cfg, &in.gat_params, &in.x},
                          ExecMode::kSimulateOnly, sim::v100()));
  std::string doc = sink.to_json();
  sink.clear();
  return doc;
}

TEST_F(ShardDeterminism, MetricsDocumentByteIdenticalAt1_2_8Threads) {
  par::set_max_threads(1);
  const std::string serial = run_sharded_and_serialize();
  ASSERT_FALSE(serial.empty());
  EXPECT_NE(serial.find("ghost_bytes"), std::string::npos);
  for (int threads : {2, 8}) {
    par::set_max_threads(threads);
    const std::string parallel = run_sharded_and_serialize();
    EXPECT_EQ(parallel, serial) << "at " << threads << " threads";
  }
}

}  // namespace
}  // namespace gnnbridge
