// Shard-level failure domains (DESIGN.md §17): a shard-scoped fault must
// be absorbed by re-executing only the failed shard (or redoing the
// exchange), the recovered output must be bit-identical to a fault-free
// run, persistent faults must walk the final ladder rung
// (sharded->unsharded) without the job ever failing, and none of it may
// count against the circuit breaker. The journal carries the recovery
// story (fault_injected / shard_retry / shard_fallback) and a fallback
// trips the flight recorder.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "graph/datasets.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/journal.hpp"
#include "par/thread_pool.hpp"
#include "prof/metrics_json.hpp"
#include "rt/degrade.hpp"
#include "rt/fault.hpp"
#include "tests/testing/util.hpp"

namespace gnnbridge {
namespace {

using engine::EngineConfig;
using engine::OptimizedEngine;
using kernels::ExecMode;

class ShardRecovery : public ::testing::Test {
 protected:
  void SetUp() override {
    rt::FaultInjector::instance().clear();
    prof::MetricsSink::instance().clear();
    obs::EventJournal::instance().clear();
    obs::FlightRecorder::instance().clear();
  }
  void TearDown() override {
    par::set_max_threads(0);
    rt::FaultInjector::instance().clear();
    obs::EventJournal::instance().set_enabled(false);
    obs::EventJournal::instance().clear();
    prof::MetricsSink::instance().clear();
  }
};

struct Inputs {
  graph::Dataset collab = graph::make_dataset(graph::DatasetId::kCollab, 0.02);
  models::GcnConfig gcn_cfg;
  models::GatConfig gat_cfg;
  models::GcnParams gcn_params;
  models::GatParams gat_params;
  models::Matrix x;

  Inputs() {
    gcn_cfg.dims = {32, 16, 8};
    gat_cfg.dims = {32, 16};
    gcn_params = models::init_gcn(gcn_cfg, 1);
    gat_params = models::init_gat(gat_cfg, 2);
    x = models::init_features(collab.csr.num_nodes, 32, 4);
  }
};

const Inputs& inputs() {
  static const Inputs* in = new Inputs();
  return *in;
}

const engine::GcnRun& gcn_run() {
  static const engine::GcnRun* run =
      new engine::GcnRun{&inputs().gcn_cfg, &inputs().gcn_params, &inputs().x};
  return *run;
}

EngineConfig sharded_cfg(int k) {
  EngineConfig cfg;
  cfg.shards = k;
  return cfg;
}

OptimizedEngine::BatchJob gcn_job(const Inputs& in, const engine::GcnRun& run,
                                  std::string plan, int max_attempts = 1) {
  OptimizedEngine::BatchJob job;
  job.data = &in.collab;
  job.gcn = &run;
  job.mode = ExecMode::kFull;
  job.spec = sim::v100();
  job.max_attempts = max_attempts;
  job.fault_plan = std::move(plan);
  job.request_id = "recov-0";
  return job;
}

// Fault-free unsharded references (the bit-identity oracle: sharded
// outputs equal unsharded outputs float for float, recovered or not).
const models::Matrix& gcn_reference() {
  static const models::Matrix* ref = [] {
    const Inputs& in = inputs();
    OptimizedEngine plain;
    auto r = plain.run_gcn(in.collab, {&in.gcn_cfg, &in.gcn_params, &in.x}, ExecMode::kFull,
                           sim::v100());
    EXPECT_TRUE(r.status.ok()) << r.status.to_string();
    return new models::Matrix(std::move(r.output));
  }();
  return *ref;
}

const models::Matrix& gat_reference() {
  static const models::Matrix* ref = [] {
    const Inputs& in = inputs();
    OptimizedEngine plain;
    auto r = plain.run_gat(in.collab, {&in.gat_cfg, &in.gat_params, &in.x}, ExecMode::kFull,
                           sim::v100());
    EXPECT_TRUE(r.status.ok()) << r.status.to_string();
    return new models::Matrix(std::move(r.output));
  }();
  return *ref;
}

// ---- In-place recovery: one shard fault, only that shard re-executes,
// the output is bit-identical, and the wasted work is priced.

TEST_F(ShardRecovery, GcnShardComputeRecoversBitIdentical) {
  const Inputs& in = inputs();
  OptimizedEngine e(sharded_cfg(4));
  const auto job = gcn_job(in, gcn_run(), "shard_compute=1");
  const auto results = e.run_batch({&job, 1});
  ASSERT_EQ(results.size(), 1u);
  const auto& r = results[0];
  ASSERT_TRUE(r.status.ok()) << r.status.to_string();
  EXPECT_EQ(r.attempts, 1) << "shard recovery must not consume a batch retry";
  EXPECT_TRUE(r.output == gcn_reference()) << "recovered output drifted from fault-free run";
  EXPECT_EQ(r.stats.shards, 4);
  EXPECT_GE(r.stats.shard_retries, 1u);
  EXPECT_GE(r.stats.shards_reexecuted, 1u);
  EXPECT_EQ(r.stats.fallback_unsharded, 0u);
  EXPECT_GT(r.stats.recovery_wasted_cycles, 0.0) << "failed attempt must be priced";
}

TEST_F(ShardRecovery, GatShardExchangeRecoversBitIdentical) {
  const Inputs& in = inputs();
  OptimizedEngine e(sharded_cfg(4));
  OptimizedEngine::BatchJob job;
  job.data = &in.collab;
  const engine::GatRun run{&in.gat_cfg, &in.gat_params, &in.x};
  job.gat = &run;
  job.mode = ExecMode::kFull;
  job.spec = sim::v100();
  job.fault_plan = "shard_exchange=1";
  const auto results = e.run_batch({&job, 1});
  ASSERT_EQ(results.size(), 1u);
  const auto& r = results[0];
  ASSERT_TRUE(r.status.ok()) << r.status.to_string();
  EXPECT_TRUE(r.output == gat_reference());
  EXPECT_EQ(r.stats.shards, 4);
  // An exchange redo is a retry decision but re-executes no shard body.
  EXPECT_GE(r.stats.shard_retries, 1u);
  EXPECT_EQ(r.stats.shards_reexecuted, 0u);
  EXPECT_GT(r.stats.recovery_wasted_cycles, 0.0);
}

// ---- Ladder exhaustion: a persistent shard fault spends the per-shard
// budget and falls back to the unsharded pipeline — the job still
// succeeds, bit-identical, and the sink's recovery block says why.

TEST_F(ShardRecovery, PersistentShardComputeFallsBackUnshardedBitIdentical) {
  const Inputs& in = inputs();
  auto& sink = prof::MetricsSink::instance();
  OptimizedEngine e(sharded_cfg(4));
  const auto job = gcn_job(in, gcn_run(), "shard_compute=*");
  const auto results = e.run_batch({&job, 1});
  ASSERT_EQ(results.size(), 1u);
  const auto& r = results[0];
  ASSERT_TRUE(r.status.ok()) << r.status.to_string();
  EXPECT_EQ(r.attempts, 1) << "fallback is a ladder rung, not a batch retry";
  EXPECT_TRUE(r.output == gcn_reference());
  // The successful attempt ran unsharded; its RunStats carry no shard
  // fields. The abandoned sharded attempt's recovery story lives in the
  // sink's batch-folded recovery block instead.
  EXPECT_EQ(r.stats.shards, 1);
  const prof::RecoveryStats recov = sink.recovery();
  EXPECT_GE(recov.shard_retries, 1u);
  EXPECT_EQ(recov.fallback_unsharded, 1u);
  EXPECT_GT(recov.wasted_cycles, 0.0);
  // The rung is a recorded degradation, flagged injected.
  bool found = false;
  for (const auto& ev : sink.degradations()) {
    if (ev.seam == rt::kSeamShardCompute && ev.knob == rt::kKnobSharding) {
      found = true;
      EXPECT_TRUE(ev.injected);
      EXPECT_EQ(ev.action, "sharded->unsharded");
    }
  }
  EXPECT_TRUE(found) << "no sharding degradation event recorded";
}

// ---- Breaker interplay: shard-level recovery is invisible to the
// circuit breaker. With failure_threshold=1 any recorded failure would
// trip it — so trips==0 proves recovery never counts as one.

TEST_F(ShardRecovery, RecoverySuccessDoesNotCountAsBreakerFailure) {
  const Inputs& in = inputs();
  EngineConfig cfg = sharded_cfg(4);
  cfg.breaker.failure_threshold = 1;
  OptimizedEngine e(cfg);
  const auto job = gcn_job(in, gcn_run(), "shard_compute=1");
  const auto results = e.run_batch({&job, 1});
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].status.ok()) << results[0].status.to_string();
  EXPECT_GE(results[0].stats.shard_retries, 1u);
  EXPECT_EQ(results[0].breaker_state, "closed");
  EXPECT_EQ(e.breaker().counters().trips, 0u);
}

TEST_F(ShardRecovery, FallbackUnshardedKeepsTheBreakerClosed) {
  const Inputs& in = inputs();
  EngineConfig cfg = sharded_cfg(4);
  cfg.breaker.failure_threshold = 1;
  OptimizedEngine e(cfg);
  const auto job = gcn_job(in, gcn_run(), "shard_compute=*");
  const auto results = e.run_batch({&job, 1});
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].status.ok()) << results[0].status.to_string();
  // The job succeeded on the fallback rung, so the breaker records a
  // success: closed state, zero trips, even at threshold 1.
  EXPECT_EQ(results[0].breaker_state, "closed");
  EXPECT_EQ(e.breaker().counters().trips, 0u);
}

// ---- Plan-cache hygiene: a partition computed under an armed
// shard_partition seam must never be memoized — the failed attempt
// leaves the cache empty, and the retry re-partitions cleanly.

TEST_F(ShardRecovery, FaultedPartitionIsNeverCached) {
  const Inputs& in = inputs();
  {
    OptimizedEngine e(sharded_cfg(4));
    const auto job = gcn_job(in, gcn_run(), "shard_partition=1", /*max_attempts=*/1);
    const auto results = e.run_batch({&job, 1});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].status.ok());
    EXPECT_EQ(results[0].status.code(), rt::StatusCode::kFaultInjected);
    EXPECT_EQ(e.shard_plan_cache_size(), 0u)
        << "a fault-injected partition must not be memoized";
  }
  {
    OptimizedEngine e(sharded_cfg(4));
    const auto job = gcn_job(in, gcn_run(), "shard_partition=1", /*max_attempts=*/2);
    const auto results = e.run_batch({&job, 1});
    ASSERT_EQ(results.size(), 1u);
    ASSERT_TRUE(results[0].status.ok()) << results[0].status.to_string();
    EXPECT_EQ(results[0].attempts, 2);
    EXPECT_TRUE(results[0].output == gcn_reference());
    EXPECT_EQ(e.shard_plan_cache_size(), 1u) << "the clean retry must re-partition and cache";
  }
}

// ---- Journal + flight recorder: the recovery story is observable.

TEST_F(ShardRecovery, JournalCarriesFaultInjectedAndShardRetryEvents) {
  const Inputs& in = inputs();
  auto& journal = obs::EventJournal::instance();
  journal.set_enabled(true);
  OptimizedEngine e(sharded_cfg(4));
  const auto job = gcn_job(in, gcn_run(), "shard_compute=1");
  const auto results = e.run_batch({&job, 1});
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].status.ok()) << results[0].status.to_string();
  std::size_t injected = 0, retries = 0;
  for (const auto& ev : journal.snapshot()) {
    if (ev.type == "fault_injected") {
      ++injected;
      EXPECT_EQ(ev.key, rt::kSeamShardCompute);
      EXPECT_EQ(ev.request_id, "recov-0");
      EXPECT_EQ(ev.attempt, 1u) << "first (and only) armed shot";
    }
    if (ev.type == "shard_retry") {
      ++retries;
      EXPECT_EQ(ev.key, rt::kSeamShardCompute);
      EXPECT_GT(ev.cycles, 0.0) << "retry events carry the wasted cycles";
      EXPECT_NE(ev.detail.find("shard="), std::string::npos) << ev.detail;
    }
  }
  EXPECT_EQ(injected, 1u);
  EXPECT_EQ(retries, results[0].stats.shard_retries);
}

TEST_F(ShardRecovery, FallbackJournalsAndTriggersTheFlightRecorder) {
  const Inputs& in = inputs();
  auto& journal = obs::EventJournal::instance();
  journal.set_enabled(true);
  auto& recorder = obs::FlightRecorder::instance();
  OptimizedEngine e(sharded_cfg(4));
  const auto job = gcn_job(in, gcn_run(), "shard_exchange=*");
  const auto results = e.run_batch({&job, 1});
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].status.ok()) << results[0].status.to_string();
  bool fell_back = false;
  for (const auto& ev : journal.snapshot()) {
    if (ev.type == "shard_fallback") {
      fell_back = true;
      EXPECT_EQ(ev.key, rt::kSeamShardExchange);
      EXPECT_EQ(ev.code, rt::kKnobSharding);
      EXPECT_EQ(ev.detail, "sharded->unsharded");
    }
  }
  EXPECT_TRUE(fell_back) << "no shard_fallback journal event";
  // Unarmed, the recorder still classifies: the fallback is an anomaly.
  EXPECT_EQ(recorder.last_trigger(), "shard_fallback");
}

// ---- Thread-count determinism of a recovering batch: the recovery
// counters, degradations and journal fold in job order, so the whole
// metrics document is byte-identical at 1, 2 and 8 host threads.

std::string run_recovering_batch_and_serialize() {
  const Inputs& in = inputs();
  auto& sink = prof::MetricsSink::instance();
  sink.clear();
  sink.configure("shard-recovery", 0.02);
  sink.set_meta(prof::MetaInfo{.git_sha = "fixed",
                               .timestamp = "2026-01-01T00:00:00Z",
                               .hostname = "fixed",
                               .scale_env = "0.02",
                               .threads = 0});
  OptimizedEngine e(sharded_cfg(4));
  std::vector<OptimizedEngine::BatchJob> jobs;
  const engine::GcnRun gcn{&in.gcn_cfg, &in.gcn_params, &in.x};
  const engine::GatRun gat{&in.gat_cfg, &in.gat_params, &in.x};
  for (int j = 0; j < 2; ++j) {
    OptimizedEngine::BatchJob job;
    job.data = &in.collab;
    if (j == 0) {
      job.gcn = &gcn;
      job.fault_plan = "shard_compute=1";
    } else {
      job.gat = &gat;
      job.fault_plan = "shard_exchange=*";
    }
    job.mode = ExecMode::kFull;
    job.spec = sim::v100();
    job.request_id = "recov-batch-" + std::to_string(j);
    jobs.push_back(std::move(job));
  }
  const auto results = e.run_batch(jobs);
  EXPECT_EQ(results.size(), 2u);
  for (const auto& r : results) EXPECT_TRUE(r.status.ok()) << r.status.to_string();
  std::string doc = sink.to_json();
  sink.clear();
  return doc;
}

TEST_F(ShardRecovery, RecoveringBatchMetricsByteIdenticalAt1_2_8Threads) {
  par::set_max_threads(1);
  const std::string serial = run_recovering_batch_and_serialize();
  ASSERT_FALSE(serial.empty());
  EXPECT_NE(serial.find("\"recovery\""), std::string::npos);
  EXPECT_NE(serial.find("fallback_unsharded"), std::string::npos);
  for (int threads : {2, 8}) {
    par::set_max_threads(threads);
    const std::string parallel = run_recovering_batch_and_serialize();
    EXPECT_EQ(parallel, serial) << "at " << threads << " threads";
  }
}

}  // namespace
}  // namespace gnnbridge
