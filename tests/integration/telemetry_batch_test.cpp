// Serving telemetry end to end (DESIGN.md §13): run_batch fills the
// telemetry registry and the event journal in its sequential job-order
// fold, so the metrics-v5 document (telemetry block included), the JSONL
// event journal and the Prometheus exposition must all stay byte-identical
// at 1, 2 and 8 host threads. Also pins request-id propagation: caller
// IDs and synthesized "req-<batch>-<index>" IDs reach the journal and the
// tracer's span records.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "graph/datasets.hpp"
#include "obs/journal.hpp"
#include "obs/prometheus.hpp"
#include "obs/registry.hpp"
#include "par/thread_pool.hpp"
#include "prof/metrics_json.hpp"
#include "prof/tracer.hpp"
#include "rt/deadline.hpp"

namespace gnnbridge {
namespace {

using engine::EngineConfig;
using engine::OptimizedEngine;

class TelemetryBatch : public ::testing::Test {
 protected:
  void SetUp() override {
    prof::MetricsSink::instance().clear();  // also clears the registry
    obs::EventJournal::instance().clear();
    obs::EventJournal::instance().set_enabled(true);
  }
  void TearDown() override {
    obs::EventJournal::instance().set_enabled(false);
    obs::EventJournal::instance().clear();
    prof::MetricsSink::instance().clear();
    prof::Tracer::instance().set_enabled(false);
    prof::Tracer::instance().clear();
    par::set_max_threads(0);
  }
};

struct Inputs {
  graph::Dataset collab = graph::make_dataset(graph::DatasetId::kCollab, 0.02);
  models::GcnConfig gcn_cfg;
  models::GatConfig gat_cfg;
  models::GcnParams gcn_params;
  models::GatParams gat_params;
  models::Matrix x;

  Inputs() {
    gcn_cfg.dims = {32, 16};
    gat_cfg.dims = {32, 16};
    gcn_params = models::init_gcn(gcn_cfg, 1);
    gat_params = models::init_gat(gat_cfg, 2);
    x = models::init_features(collab.csr.num_nodes, 32, 4);
  }
};

const Inputs& inputs() {
  static const Inputs* in = new Inputs();
  return *in;
}

// A stream with retries in play (a two-shot launch fault plus a clean
// retry budget) so attempt, backoff and degradation events all hit the
// journal.
std::vector<OptimizedEngine::BatchJob> make_stream(const baselines::GcnRun& gcn,
                                                   const baselines::GatRun& gat) {
  const Inputs& in = inputs();
  const char* plans[] = {"", "sim_launch=2", "tuner_probe=3", ""};
  std::vector<OptimizedEngine::BatchJob> jobs(6);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    OptimizedEngine::BatchJob& job = jobs[i];
    job.data = &in.collab;
    if (i % 2 == 0) {
      job.gcn = &gcn;
    } else {
      job.gat = &gat;
    }
    job.spec = sim::v100();
    job.deadline = rt::Deadline::cycles(1e9);
    job.max_attempts = 2;
    job.fault_plan = plans[i % 4];
  }
  return jobs;
}

struct Exports {
  std::string metrics;
  std::string journal;
  std::string prometheus;
};

Exports run_and_export() {
  const Inputs& in = inputs();
  EngineConfig cfg;
  cfg.auto_tune = true;
  OptimizedEngine eng(cfg);

  prof::MetricsSink& sink = prof::MetricsSink::instance();
  sink.clear();
  obs::EventJournal::instance().clear();
  sink.configure("telemetry_batch", 0.02);
  sink.set_meta(prof::MetaInfo{.git_sha = "fixed",
                               .timestamp = "2026-01-01T00:00:00Z",
                               .hostname = "fixed",
                               .scale_env = "0.02",
                               .threads = 0});

  baselines::GcnRun gcn{&in.gcn_cfg, &in.gcn_params, &in.x};
  baselines::GatRun gat{&in.gat_cfg, &in.gat_params, &in.x};
  const auto jobs = make_stream(gcn, gat);
  const auto results = eng.run_batch(jobs);
  EXPECT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].status.ok())
        << "job " << i << ": " << results[i].status.to_string();
  }

  Exports out;
  out.metrics = sink.to_json();
  out.journal = obs::EventJournal::instance().to_jsonl();
  out.prometheus = obs::render_prometheus(obs::TelemetryRegistry::instance().snapshot());
  sink.clear();
  obs::EventJournal::instance().clear();
  return out;
}

TEST_F(TelemetryBatch, ExportsByteIdenticalAt1_2_8Threads) {
  par::set_max_threads(1);
  const Exports serial = run_and_export();
  ASSERT_FALSE(serial.metrics.empty());
  ASSERT_FALSE(serial.journal.empty());
  ASSERT_FALSE(serial.prometheus.empty());
  EXPECT_NE(serial.metrics.find("\"telemetry\""), std::string::npos);
  EXPECT_NE(serial.prometheus.find("gnnbridge_serve_job_cycles_count 6"), std::string::npos)
      << serial.prometheus;
  for (int threads : {2, 8}) {
    par::set_max_threads(threads);
    const Exports parallel = run_and_export();
    EXPECT_EQ(parallel.metrics, serial.metrics) << "metrics at " << threads << " threads";
    EXPECT_EQ(parallel.journal, serial.journal) << "journal at " << threads << " threads";
    EXPECT_EQ(parallel.prometheus, serial.prometheus)
        << "prometheus at " << threads << " threads";
  }
}

TEST_F(TelemetryBatch, JournalCarriesCallerAndSynthesizedRequestIds) {
  const Inputs& in = inputs();
  par::set_max_threads(2);
  OptimizedEngine eng;
  baselines::GcnRun gcn{&in.gcn_cfg, &in.gcn_params, &in.x};

  std::vector<OptimizedEngine::BatchJob> jobs(2);
  jobs[0].data = &in.collab;
  jobs[0].gcn = &gcn;
  jobs[0].spec = sim::v100();
  jobs[0].request_id = "caller-7";
  jobs[1].data = &in.collab;
  jobs[1].gcn = &gcn;
  jobs[1].spec = sim::v100();

  const auto results = eng.run_batch(jobs);
  ASSERT_EQ(results.size(), 2u);
  const std::string jsonl = obs::EventJournal::instance().to_jsonl();
  EXPECT_NE(jsonl.find("\"req\":\"caller-7\""), std::string::npos) << jsonl;
  EXPECT_NE(jsonl.find("\"req\":\"req-0-1\""), std::string::npos)
      << "second job must get a synthesized batch-scoped id:\n" << jsonl;
  // A second batch on the same engine advances the batch counter.
  obs::EventJournal::instance().clear();
  (void)eng.run_batch(jobs);
  EXPECT_NE(obs::EventJournal::instance().to_jsonl().find("\"req\":\"req-1-1\""),
            std::string::npos);
}

TEST_F(TelemetryBatch, SpansRecordTheRequestId) {
  const Inputs& in = inputs();
  par::set_max_threads(2);
  prof::Tracer::instance().clear();
  prof::Tracer::instance().set_enabled(true);
  OptimizedEngine eng;
  baselines::GcnRun gcn{&in.gcn_cfg, &in.gcn_params, &in.x};

  std::vector<OptimizedEngine::BatchJob> jobs(1);
  jobs[0].data = &in.collab;
  jobs[0].gcn = &gcn;
  jobs[0].spec = sim::v100();
  jobs[0].request_id = "span-req";
  (void)eng.run_batch(jobs);
  prof::Tracer::instance().set_enabled(false);

  std::size_t stamped = 0;
  for (const prof::SpanRecord& span : prof::Tracer::instance().snapshot()) {
    if (span.request_id == "span-req") ++stamped;
  }
  EXPECT_GT(stamped, 0u) << "no span carried the job's request id";
}

}  // namespace
}  // namespace gnnbridge
