// The semantics-preservation contract (paper §5: "our optimizations do not
// alter the semantics of the models"): every backend — DGL-style,
// PyG-style, ROC-style, and the optimized engine in every configuration —
// must produce the same model outputs as the host reference.
#include <gtest/gtest.h>

#include "baselines/dgl.hpp"
#include "baselines/pyg.hpp"
#include "baselines/roc.hpp"
#include "engine/engine.hpp"
#include "models/reference.hpp"
#include "tests/testing/util.hpp"

namespace gnnbridge {
namespace {

using baselines::Backend;
using baselines::DglBackend;
using baselines::GatRun;
using baselines::GcnRun;
using baselines::PygBackend;
using baselines::RocBackend;
using baselines::SageLstmRun;
using engine::EngineConfig;
using engine::OptimizedEngine;
using engine::SageOptLevel;
using kernels::ExecMode;
using models::Matrix;

/// A small but non-trivial dataset for numerics (power-law-ish, ~600
/// nodes): big enough to exercise splits and clusters, small enough for
/// full-mode math.
graph::Dataset tiny_dataset() {
  return graph::make_dataset(graph::DatasetId::kCollab, 0.01);
}

struct Inputs {
  graph::Dataset data = tiny_dataset();
  models::GcnConfig gcn_cfg;
  models::GatConfig gat_cfg;
  models::SageLstmConfig sage_cfg;
  models::GcnParams gcn_params;
  models::GatParams gat_params;
  models::SageLstmParams sage_params;
  Matrix x_gcn, x_gat, x_sage;

  Inputs() {
    gcn_cfg.dims = {24, 12, 6};
    gat_cfg.dims = {20, 10, 5};
    sage_cfg = {.in_feat = 12, .hidden = 8, .steps = 5};
    gcn_params = models::init_gcn(gcn_cfg, 1);
    gat_params = models::init_gat(gat_cfg, 2);
    sage_params = models::init_sage_lstm(sage_cfg, 3);
    x_gcn = models::init_features(data.csr.num_nodes, 24, 4);
    x_gat = models::init_features(data.csr.num_nodes, 20, 5);
    x_sage = models::init_features(data.csr.num_nodes, 12, 6);
  }
};

const Inputs& inputs() {
  static const Inputs* in = new Inputs();
  return *in;
}

Matrix gcn_expected() {
  const Inputs& in = inputs();
  return models::gcn_forward_ref(in.data.csr, in.x_gcn, in.gcn_cfg, in.gcn_params);
}

Matrix gat_expected() {
  const Inputs& in = inputs();
  return models::gat_forward_ref(in.data.csr, in.x_gat, in.gat_cfg, in.gat_params);
}

Matrix sage_expected() {
  const Inputs& in = inputs();
  return models::sage_lstm_forward_ref(in.data.csr, in.x_sage, in.sage_cfg, in.sage_params);
}

void expect_gcn_matches(Backend& backend) {
  const Inputs& in = inputs();
  const GcnRun run{&in.gcn_cfg, &in.gcn_params, &in.x_gcn};
  const auto result = backend.run_gcn(in.data, run, ExecMode::kFull, sim::v100());
  ASSERT_FALSE(result.oom);
  EXPECT_TRUE(tensor::allclose(result.output, gcn_expected(), 2e-3f, 2e-4f))
      << backend.name() << " max diff "
      << tensor::max_abs_diff(result.output, gcn_expected());
}

void expect_gat_matches(Backend& backend) {
  const Inputs& in = inputs();
  const GatRun run{&in.gat_cfg, &in.gat_params, &in.x_gat};
  const auto result = backend.run_gat(in.data, run, ExecMode::kFull, sim::v100());
  ASSERT_FALSE(result.oom);
  EXPECT_TRUE(tensor::allclose(result.output, gat_expected(), 2e-3f, 2e-4f))
      << backend.name() << " max diff "
      << tensor::max_abs_diff(result.output, gat_expected());
}

void expect_sage_matches(Backend& backend) {
  const Inputs& in = inputs();
  const SageLstmRun run{&in.sage_cfg, &in.sage_params, &in.x_sage};
  const auto result = backend.run_sage_lstm(in.data, run, ExecMode::kFull, sim::v100());
  ASSERT_FALSE(result.oom);
  EXPECT_TRUE(tensor::allclose(result.output, sage_expected(), 2e-3f, 2e-4f))
      << backend.name() << " max diff "
      << tensor::max_abs_diff(result.output, sage_expected());
}

TEST(BackendEquivalence, DglGcn) {
  DglBackend b;
  expect_gcn_matches(b);
}

TEST(BackendEquivalence, DglGat) {
  DglBackend b;
  expect_gat_matches(b);
}

TEST(BackendEquivalence, DglSageLstm) {
  DglBackend b;
  expect_sage_matches(b);
}

TEST(BackendEquivalence, PygGcn) {
  PygBackend b;
  expect_gcn_matches(b);
}

TEST(BackendEquivalence, PygGat) {
  PygBackend b;
  expect_gat_matches(b);
}

TEST(BackendEquivalence, RocGcn) {
  RocBackend b;
  expect_gcn_matches(b);
}

/// The engine's optimization space, swept: every combination must stay
/// semantically equal to the reference.
struct EngineVariant {
  const char* label;
  EngineConfig cfg;
};

std::vector<EngineVariant> engine_variants() {
  std::vector<EngineVariant> out;
  for (bool ng : {false, true}) {
    for (bool las : {false, true}) {
      for (bool adapter : {false, true}) {
        for (bool linear : {false, true}) {
          if (linear && !adapter) continue;  // linear requires the adapter
          EngineConfig cfg;
          cfg.use_neighbor_grouping = ng;
          cfg.group_bound = ng ? 8 : 0;  // force splits on the tiny graph
          cfg.use_las = las;
          cfg.use_adapter = adapter;
          cfg.use_linear = linear;
          out.push_back({"", cfg});
        }
      }
    }
  }
  return out;
}

class EngineEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(EngineEquivalence, GcnMatchesReference) {
  OptimizedEngine e(engine_variants()[static_cast<std::size_t>(GetParam())].cfg);
  expect_gcn_matches(e);
}

TEST_P(EngineEquivalence, GatMatchesReference) {
  OptimizedEngine e(engine_variants()[static_cast<std::size_t>(GetParam())].cfg);
  expect_gat_matches(e);
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, EngineEquivalence,
                         ::testing::Range(0, static_cast<int>(engine_variants().size())));

class SageLevels : public ::testing::TestWithParam<SageOptLevel> {};

TEST_P(SageLevels, SageLstmMatchesReference) {
  EngineConfig cfg;
  cfg.sage_level = GetParam();
  OptimizedEngine e(cfg);
  expect_sage_matches(e);
}

INSTANTIATE_TEST_SUITE_P(AllLevels, SageLevels,
                         ::testing::Values(SageOptLevel::kBase, SageOptLevel::kSparseFetch,
                                           SageOptLevel::kSparseFetchBypass));

TEST(BackendEquivalence, SagePoolDglMatchesReference) {
  const Inputs& in = inputs();
  models::SagePoolConfig cfg;
  cfg.in_feat = 12;
  cfg.pool_dim = 8;
  cfg.out_feat = 4;
  const models::SagePoolParams params = models::init_sage_pool(cfg, 11);
  const Matrix x = models::init_features(in.data.csr.num_nodes, 12, 11);
  const Matrix expect = models::sage_pool_forward_ref(in.data.csr, x, cfg, params);

  DglBackend dgl;
  ASSERT_TRUE(dgl.supports_pool());
  const auto r = dgl.run_sage_pool(in.data, {&cfg, &params, &x}, ExecMode::kFull, sim::v100());
  EXPECT_TRUE(tensor::allclose(r.output, expect, 1e-3f, 1e-4f));
}

TEST(BackendEquivalence, SagePoolEngineMatchesReferenceUnderSplits) {
  const Inputs& in = inputs();
  models::SagePoolConfig cfg;
  cfg.in_feat = 12;
  cfg.pool_dim = 8;
  cfg.out_feat = 4;
  const models::SagePoolParams params = models::init_sage_pool(cfg, 12);
  const Matrix x = models::init_features(in.data.csr.num_nodes, 12, 12);
  const Matrix expect = models::sage_pool_forward_ref(in.data.csr, x, cfg, params);

  EngineConfig ecfg;
  ecfg.group_bound = 4;  // force split rows: atomic max path
  OptimizedEngine e(ecfg);
  const auto r = e.run_sage_pool(in.data, {&cfg, &params, &x}, ExecMode::kFull, sim::v100());
  EXPECT_TRUE(tensor::allclose(r.output, expect, 1e-3f, 1e-4f));
}

TEST(BackendEquivalence, SagePoolUnsupportedBackendsSaySo) {
  PygBackend pyg;
  RocBackend roc;
  EXPECT_FALSE(pyg.supports_pool());
  EXPECT_FALSE(roc.supports_pool());
}

TEST(BackendEquivalence, OomBackendsReportOomNotGarbage) {
  // products at paper scale OOMs PyG GCN: the backend must say so.
  const Inputs& in = inputs();
  graph::Dataset products = graph::make_dataset(graph::DatasetId::kProducts, 0.003);
  PygBackend b;
  models::GcnConfig big;  // paper dims: the footprint formula uses these
  const models::GcnParams params = models::init_gcn(big, 9);
  Matrix x = models::init_features(products.csr.num_nodes, big.dims[0], 9);
  const GcnRun run{&big, &params, &x};
  const auto result = b.run_gcn(products, run, ExecMode::kSimulateOnly, sim::v100());
  EXPECT_TRUE(result.oom);
  EXPECT_EQ(result.stats.num_launches(), 0);
  (void)in;
}

}  // namespace
}  // namespace gnnbridge
