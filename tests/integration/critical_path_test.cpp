// Critical-path attribution end to end (DESIGN.md §15): run_batch emits
// per-request phase events (attempt, backoff, outcome, e2e, slo_violation)
// from its sequential job-order fold; the triage analyzer re-derives each
// request's end-to-end total from the phases and checks it against the
// engine's own "e2e" bookkeeping (phase-sum invariant, 1e-6 relative).
// With the SLO tracker armed and the flight recorder pointed at a file,
// the triage table, the metrics-v7 `slo` block and the postmortem dump
// must all stay byte-identical at 1, 2 and 8 host threads.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "graph/datasets.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/journal.hpp"
#include "obs/slo.hpp"
#include "par/thread_pool.hpp"
#include "prof/critical_path.hpp"
#include "prof/metrics_json.hpp"
#include "rt/deadline.hpp"

namespace gnnbridge {
namespace {

using engine::EngineConfig;
using engine::OptimizedEngine;

class CriticalPathBatch : public ::testing::Test {
 protected:
  void SetUp() override {
    unsetenv("GNNBRIDGE_FLIGHT_RECORDER");
    prof::MetricsSink::instance().clear();  // also clears registry + SLO tracker
    obs::EventJournal::instance().clear();
    obs::EventJournal::instance().set_enabled(true);
    obs::FlightRecorder::instance().clear();
  }
  void TearDown() override {
    obs::EventJournal::instance().set_enabled(false);
    obs::EventJournal::instance().clear();
    obs::FlightRecorder::instance().clear();
    prof::MetricsSink::instance().clear();
    par::set_max_threads(0);
  }
};

struct Inputs {
  graph::Dataset collab = graph::make_dataset(graph::DatasetId::kCollab, 0.02);
  models::GcnConfig gcn_cfg;
  models::GatConfig gat_cfg;
  models::GcnParams gcn_params;
  models::GatParams gat_params;
  models::Matrix x;

  Inputs() {
    gcn_cfg.dims = {32, 16};
    gat_cfg.dims = {32, 16};
    gcn_params = models::init_gcn(gcn_cfg, 1);
    gat_params = models::init_gat(gat_cfg, 2);
    x = models::init_features(collab.csr.num_nodes, 32, 4);
  }
};

const Inputs& inputs() {
  static const Inputs* in = new Inputs();
  return *in;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Two tenants, retries in play: a four-shot launch fault exhausts the
// degradation ladder on the first attempt (failed attempt -> backoff ->
// clean retry), so backoff and degraded-overhead phases appear in
// waterfalls while every job still ends ok.
std::vector<OptimizedEngine::BatchJob> make_stream(const baselines::GcnRun& gcn,
                                                   const baselines::GatRun& gat) {
  const Inputs& in = inputs();
  const char* plans[] = {"", "sim_launch=4", "tuner_probe=3", ""};
  std::vector<OptimizedEngine::BatchJob> jobs(6);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    OptimizedEngine::BatchJob& job = jobs[i];
    job.data = &in.collab;
    if (i % 2 == 0) {
      job.gcn = &gcn;
      job.tenant = "t-gcn";
    } else {
      job.gat = &gat;
      job.tenant = "t-gat";
    }
    job.spec = sim::v100();
    job.deadline = rt::Deadline::cycles(1e9);
    job.max_attempts = 2;
    job.fault_plan = plans[i % 4];
    job.request_id = "cp-" + std::to_string(i);
  }
  return jobs;
}

struct Exports {
  std::string metrics;
  std::string journal;
  std::string triage;
  std::string postmortem;
};

Exports run_and_export(const std::string& postmortem_path) {
  const Inputs& in = inputs();
  EngineConfig cfg;
  cfg.auto_tune = true;
  OptimizedEngine eng(cfg);

  prof::MetricsSink& sink = prof::MetricsSink::instance();
  sink.clear();
  obs::EventJournal::instance().clear();
  obs::FlightRecorder::instance().clear();
  obs::FlightRecorder::instance().arm(postmortem_path);
  std::remove(postmortem_path.c_str());

  // A 1-cycle latency objective makes every request a latency violation,
  // and the 0.75 success target exhausts each tenant's budget on its first
  // violation — exercising the slo_violation events and the recorder's
  // slo_budget_exhausted trigger on a stream that still succeeds.
  obs::SloConfig slo_cfg;
  slo_cfg.latency_objective_cycles = 1.0;
  slo_cfg.success_objective = 0.75;
  slo_cfg.window_cycles = 0.0;
  obs::SloTracker::instance().configure(slo_cfg);

  sink.configure("critical_path", 0.02);
  sink.set_meta(prof::MetaInfo{.git_sha = "fixed",
                               .timestamp = "2026-01-01T00:00:00Z",
                               .hostname = "fixed",
                               .scale_env = "0.02",
                               .threads = 0});

  baselines::GcnRun gcn{&in.gcn_cfg, &in.gcn_params, &in.x};
  baselines::GatRun gat{&in.gat_cfg, &in.gat_params, &in.x};
  const auto jobs = make_stream(gcn, gat);
  const auto results = eng.run_batch(jobs);
  EXPECT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].status.ok())
        << "job " << i << ": " << results[i].status.to_string();
  }

  Exports out;
  out.metrics = sink.to_json();
  out.journal = obs::EventJournal::instance().to_jsonl();
  const auto events = prof::parse_journal_jsonl(out.journal);
  EXPECT_TRUE(events.ok()) << events.status().to_string();
  if (events.ok()) {
    out.triage = prof::render_waterfall_table(prof::analyze_critical_path(*events), 3);
  }
  out.postmortem = read_file(postmortem_path);
  std::remove(postmortem_path.c_str());
  sink.clear();
  obs::EventJournal::instance().clear();
  obs::FlightRecorder::instance().clear();
  return out;
}

TEST_F(CriticalPathBatch, PhaseSumMatchesEndToEndWithinTolerance) {
  const Inputs& in = inputs();
  par::set_max_threads(2);
  EngineConfig cfg;
  cfg.auto_tune = true;
  OptimizedEngine eng(cfg);
  baselines::GcnRun gcn{&in.gcn_cfg, &in.gcn_params, &in.x};
  baselines::GatRun gat{&in.gat_cfg, &in.gat_params, &in.x};
  const auto jobs = make_stream(gcn, gat);
  (void)eng.run_batch(jobs);

  const auto events = prof::parse_journal_jsonl(obs::EventJournal::instance().to_jsonl());
  ASSERT_TRUE(events.ok()) << events.status().to_string();
  const prof::CriticalPathReport report = prof::analyze_critical_path(*events);

  ASSERT_EQ(report.requests.size(), jobs.size());
  EXPECT_EQ(report.invariant_checked, jobs.size());
  EXPECT_EQ(report.invariant_violations, 0u);
  EXPECT_LE(report.max_invariant_rel_error, prof::kCriticalPathTolerance);
  bool saw_retry = false;
  for (const prof::RequestWaterfall& req : report.requests) {
    ASSERT_TRUE(req.has_e2e) << req.request_id;
    EXPECT_EQ(req.outcome, "ok") << req.request_id;
    EXPECT_GE(req.attempts, 1u);
    saw_retry = saw_retry || req.attempts > 1;
    const double scale = std::max(std::abs(req.end_to_end_cycles), 1.0);
    EXPECT_LE(std::abs(req.phase_sum() - req.end_to_end_cycles),
              prof::kCriticalPathTolerance * scale)
        << req.request_id << ": phase sum " << req.phase_sum() << " vs e2e "
        << req.end_to_end_cycles;
  }
  EXPECT_TRUE(saw_retry) << "fault plan should force at least one multi-attempt request";
}

TEST_F(CriticalPathBatch, TriageSloAndPostmortemByteIdenticalAt1_2_8Threads) {
  const std::string path = ::testing::TempDir() + "critical_path_postmortem.json";
  par::set_max_threads(1);
  const Exports serial = run_and_export(path);
  ASSERT_FALSE(serial.metrics.empty());
  ASSERT_FALSE(serial.triage.empty());
  EXPECT_NE(serial.metrics.find("\"slo\":{\"enabled\":true"), std::string::npos);
  EXPECT_NE(serial.metrics.find("\"tenant\":\"t-gat\""), std::string::npos);
  EXPECT_NE(serial.journal.find("\"type\":\"slo_violation\""), std::string::npos);
  EXPECT_NE(serial.triage.find("cp-0"), std::string::npos) << serial.triage;
  EXPECT_NE(serial.triage.find("[slo]"), std::string::npos) << serial.triage;
  ASSERT_FALSE(serial.postmortem.empty())
      << "budget exhaustion must have triggered a postmortem dump";
  EXPECT_NE(serial.postmortem.find("\"kind\":\"slo_budget_exhausted\""), std::string::npos)
      << serial.postmortem;

  for (int threads : {2, 8}) {
    par::set_max_threads(threads);
    const Exports parallel = run_and_export(path);
    EXPECT_EQ(parallel.metrics, serial.metrics) << "metrics at " << threads << " threads";
    EXPECT_EQ(parallel.journal, serial.journal) << "journal at " << threads << " threads";
    EXPECT_EQ(parallel.triage, serial.triage) << "triage at " << threads << " threads";
    EXPECT_EQ(parallel.postmortem, serial.postmortem)
        << "postmortem at " << threads << " threads";
  }
}

}  // namespace
}  // namespace gnnbridge
