// The engine's integrated online tuner (EngineConfig::auto_tune).
#include <gtest/gtest.h>

#include "engine/engine.hpp"
#include "graph/datasets.hpp"
#include "models/reference.hpp"
#include "tests/testing/util.hpp"

namespace gnnbridge {
namespace {

using engine::EngineConfig;
using engine::OptimizedEngine;
using kernels::ExecMode;

TEST(AutoTune, PreservesSemantics) {
  const graph::Dataset data = graph::make_dataset(graph::DatasetId::kCollab, 0.01);
  models::GcnConfig cfg;
  cfg.dims = {16, 8, 4};
  const models::GcnParams params = models::init_gcn(cfg, 1);
  const models::Matrix x = models::init_features(data.csr.num_nodes, 16, 2);
  const models::Matrix expect = models::gcn_forward_ref(data.csr, x, cfg, params);

  EngineConfig ecfg;
  ecfg.auto_tune = true;
  OptimizedEngine e(ecfg);
  const auto r = e.run_gcn(data, {&cfg, &params, &x}, ExecMode::kFull, sim::v100());
  EXPECT_TRUE(tensor::allclose(r.output, expect, 2e-3f, 2e-4f));
}

TEST(AutoTune, NotSlowerThanDefaultsOnSkewedGraph) {
  const graph::Dataset data = graph::make_dataset(graph::DatasetId::kArxiv, 0.1);
  models::GcnConfig cfg;
  cfg.dims = {64, 48};  // an awkward width the static 32-lane default wastes
  const models::GcnParams params = models::init_gcn(cfg, 3);
  const models::Matrix x = models::init_features(data.csr.num_nodes, 64, 4);

  EngineConfig plain;
  plain.use_neighbor_grouping = false;  // untuned static schedule
  EngineConfig tuned = plain;
  tuned.auto_tune = true;
  OptimizedEngine a(plain), b(tuned);
  const auto ra = a.run_gcn(data, {&cfg, &params, &x}, ExecMode::kSimulateOnly, sim::v100());
  const auto rb = b.run_gcn(data, {&cfg, &params, &x}, ExecMode::kSimulateOnly, sim::v100());
  EXPECT_LT(rb.ms, ra.ms * 1.05);  // tuning must not regress materially
}

// Regression: the engine used to key its memoized LAS order and tuned
// configuration by the graph's address (&csr). A dataset mutated or
// reloaded in place — same address, different content — silently reused
// the stale schedule. The caches are now keyed by content fingerprint;
// swapping a different graph into the same Dataset object must retune.
TEST(AutoTune, MutatedGraphAtSameAddressIsRetuned) {
  graph::Dataset data = graph::make_dataset(graph::DatasetId::kCollab, 0.02);
  models::GcnConfig cfg;
  cfg.dims = {32, 16};
  const models::GcnParams params = models::init_gcn(cfg, 5);

  // Two cache populations: the default engine memoizes LAS orders; the
  // auto-tuning engine memoizes tuned configurations (which may well turn
  // LAS off for a small graph, so its LAS cache is not asserted).
  OptimizedEngine las_engine;
  EngineConfig tcfg;
  tcfg.auto_tune = true;
  OptimizedEngine tuned_engine(tcfg);

  const auto run_both = [&](const models::Matrix& x) {
    const auto rl =
        las_engine.run_gcn(data, {&cfg, &params, &x}, ExecMode::kSimulateOnly, sim::v100());
    EXPECT_TRUE(rl.status.ok()) << rl.status.to_string();
    const auto rt =
        tuned_engine.run_gcn(data, {&cfg, &params, &x}, ExecMode::kSimulateOnly, sim::v100());
    EXPECT_TRUE(rt.status.ok()) << rt.status.to_string();
    return rt;
  };

  const models::Matrix x1 = models::init_features(data.csr.num_nodes, 32, 6);
  const auto r1 = run_both(x1);
  EXPECT_EQ(las_engine.las_cache_size(), 1u);
  EXPECT_EQ(tuned_engine.tuned_cache_size(), 1u);

  // Reload a structurally different graph into the same Dataset object:
  // `data.csr` keeps its address but now holds different content.
  data.csr = graph::make_dataset(graph::DatasetId::kArxiv, 0.02).csr;
  const models::Matrix x2 = models::init_features(data.csr.num_nodes, 32, 6);
  run_both(x2);
  EXPECT_EQ(las_engine.las_cache_size(), 2u) << "stale LAS order reused for mutated graph";
  EXPECT_EQ(tuned_engine.tuned_cache_size(), 2u) << "stale tuned config reused for mutated graph";

  // And the original graph's entries are still valid: rerunning the first
  // input hits the cache instead of growing it.
  data.csr = graph::make_dataset(graph::DatasetId::kCollab, 0.02).csr;
  const auto r3 = run_both(x1);
  EXPECT_EQ(las_engine.las_cache_size(), 2u);
  EXPECT_EQ(tuned_engine.tuned_cache_size(), 2u);
  EXPECT_DOUBLE_EQ(r1.ms, r3.ms);
}

TEST(AutoTune, TunedConfigCachedAcrossRuns) {
  const graph::Dataset data = graph::make_dataset(graph::DatasetId::kCollab, 0.02);
  models::GcnConfig cfg;
  cfg.dims = {32, 16};
  const models::GcnParams params = models::init_gcn(cfg, 5);
  const models::Matrix x = models::init_features(data.csr.num_nodes, 32, 6);

  EngineConfig ecfg;
  ecfg.auto_tune = true;
  OptimizedEngine e(ecfg);
  const auto r1 = e.run_gcn(data, {&cfg, &params, &x}, ExecMode::kSimulateOnly, sim::v100());
  const auto r2 = e.run_gcn(data, {&cfg, &params, &x}, ExecMode::kSimulateOnly, sim::v100());
  // Deterministic and identical: the cached tuned config is reused.
  EXPECT_DOUBLE_EQ(r1.ms, r2.ms);
}

// Regression: graph::fingerprint hashes topology only, and the tuned-knob
// cache used to be keyed by it alone — so a second model with a different
// feature width on the same graph was served knobs (lane width, LAS bound)
// tuned for the first width. The cache key now carries the aggregated
// feature length (dims[1], the width aggregation actually runs at); same
// graph + new width must retune, and re-running either width must hit its
// own entry.
TEST(AutoTune, SameGraphDifferentFeatureWidthIsRetuned) {
  const graph::Dataset data = graph::make_dataset(graph::DatasetId::kCollab, 0.02);
  EngineConfig ecfg;
  ecfg.auto_tune = true;
  OptimizedEngine e(ecfg);

  const auto run_width = [&](tensor::Index hidden, int seed) {
    models::GcnConfig cfg;
    cfg.dims = {32, hidden};
    const models::GcnParams params = models::init_gcn(cfg, seed);
    const models::Matrix x = models::init_features(data.csr.num_nodes, 32, seed + 1);
    const auto r = e.run_gcn(data, {&cfg, &params, &x}, ExecMode::kSimulateOnly, sim::v100());
    EXPECT_TRUE(r.status.ok()) << r.status.to_string();
    return r;
  };

  // Hidden widths no other test tunes on this graph: the thread-sticky
  // published entry (t_active_tune) outlives engines, and a recycled heap
  // address plus an already-tuned (graph, width) pair would short-circuit
  // before this engine's own cache is populated.
  const auto r24 = run_width(24, 6);
  EXPECT_EQ(e.tuned_cache_size(), 1u);
  run_width(96, 8);
  EXPECT_EQ(e.tuned_cache_size(), 2u)
      << "feature width ignored: 96-wide run served the 24-wide tuned knobs";
  // Both entries stay live: re-running the first width hits its own cache
  // entry (identical clock) instead of growing or clobbering the table.
  const auto again = run_width(24, 6);
  EXPECT_EQ(e.tuned_cache_size(), 2u);
  EXPECT_DOUBLE_EQ(r24.ms, again.ms);
}

}  // namespace
}  // namespace gnnbridge
