// The engine's integrated online tuner (EngineConfig::auto_tune).
#include <gtest/gtest.h>

#include "engine/engine.hpp"
#include "graph/datasets.hpp"
#include "models/reference.hpp"
#include "tests/testing/util.hpp"

namespace gnnbridge {
namespace {

using engine::EngineConfig;
using engine::OptimizedEngine;
using kernels::ExecMode;

TEST(AutoTune, PreservesSemantics) {
  const graph::Dataset data = graph::make_dataset(graph::DatasetId::kCollab, 0.01);
  models::GcnConfig cfg;
  cfg.dims = {16, 8, 4};
  const models::GcnParams params = models::init_gcn(cfg, 1);
  const models::Matrix x = models::init_features(data.csr.num_nodes, 16, 2);
  const models::Matrix expect = models::gcn_forward_ref(data.csr, x, cfg, params);

  EngineConfig ecfg;
  ecfg.auto_tune = true;
  OptimizedEngine e(ecfg);
  const auto r = e.run_gcn(data, {&cfg, &params, &x}, ExecMode::kFull, sim::v100());
  EXPECT_TRUE(tensor::allclose(r.output, expect, 2e-3f, 2e-4f));
}

TEST(AutoTune, NotSlowerThanDefaultsOnSkewedGraph) {
  const graph::Dataset data = graph::make_dataset(graph::DatasetId::kArxiv, 0.1);
  models::GcnConfig cfg;
  cfg.dims = {64, 48};  // an awkward width the static 32-lane default wastes
  const models::GcnParams params = models::init_gcn(cfg, 3);
  const models::Matrix x = models::init_features(data.csr.num_nodes, 64, 4);

  EngineConfig plain;
  plain.use_neighbor_grouping = false;  // untuned static schedule
  EngineConfig tuned = plain;
  tuned.auto_tune = true;
  OptimizedEngine a(plain), b(tuned);
  const auto ra = a.run_gcn(data, {&cfg, &params, &x}, ExecMode::kSimulateOnly, sim::v100());
  const auto rb = b.run_gcn(data, {&cfg, &params, &x}, ExecMode::kSimulateOnly, sim::v100());
  EXPECT_LT(rb.ms, ra.ms * 1.05);  // tuning must not regress materially
}

TEST(AutoTune, TunedConfigCachedAcrossRuns) {
  const graph::Dataset data = graph::make_dataset(graph::DatasetId::kCollab, 0.02);
  models::GcnConfig cfg;
  cfg.dims = {32, 16};
  const models::GcnParams params = models::init_gcn(cfg, 5);
  const models::Matrix x = models::init_features(data.csr.num_nodes, 32, 6);

  EngineConfig ecfg;
  ecfg.auto_tune = true;
  OptimizedEngine e(ecfg);
  const auto r1 = e.run_gcn(data, {&cfg, &params, &x}, ExecMode::kSimulateOnly, sim::v100());
  const auto r2 = e.run_gcn(data, {&cfg, &params, &x}, ExecMode::kSimulateOnly, sim::v100());
  // Deterministic and identical: the cached tuned config is reused.
  EXPECT_DOUBLE_EQ(r1.ms, r2.ms);
}

}  // namespace
}  // namespace gnnbridge
