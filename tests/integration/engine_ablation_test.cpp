// Directional checks on the simulator: each optimization must move the
// counters the way the paper's evaluation says it does. These are the
// qualitative versions of Figures 8-11 and Table 6, run at test scale.
#include <gtest/gtest.h>

#include "baselines/dgl.hpp"
#include "engine/engine.hpp"
#include "graph/datasets.hpp"
#include "kernels/spmm.hpp"
#include "tests/testing/util.hpp"

namespace gnnbridge {
namespace {

using engine::EngineConfig;
using engine::OptimizedEngine;
using kernels::ExecMode;

/// An arxiv-like graph: heavy hubs, the imbalance showcase.
graph::Dataset hub_dataset() { return graph::make_dataset(graph::DatasetId::kArxiv, 0.08); }

/// Runs one aggregation over `d` with the given engine task config and
/// feature length; trace-only.
sim::KernelStats probe_aggregation(const graph::Dataset& d, const EngineConfig& cfg,
                                   tensor::Index feat) {
  OptimizedEngine e(cfg);
  sim::SimContext ctx(sim::v100());
  auto gdev = kernels::device_graph(ctx, d.csr, "g");
  auto src = kernels::device_mat_shape(ctx, d.csr.num_nodes, feat, "src");
  auto out = kernels::device_mat_shape(ctx, d.csr.num_nodes, feat, "out");
  const core::GroupedTasks tasks = e.build_tasks(d.csr);
  kernels::SpmmArgs args{.graph = &gdev,
                         .tasks = tasks.tasks,
                         .src = &src,
                         .out = &out,
                         .lanes = cfg.lanes,
                         .atomic_merge = tasks.any_split,
                         .mode = ExecMode::kSimulateOnly};
  return kernels::spmm_node(ctx, args);
}

TEST(Ablation, NeighborGroupingClosesBalanceGap) {
  const graph::Dataset d = hub_dataset();
  EngineConfig base;
  base.use_neighbor_grouping = false;
  base.use_las = false;
  EngineConfig ng = base;
  ng.use_neighbor_grouping = true;

  const sim::KernelStats sbase = probe_aggregation(d, base, 32);
  const sim::KernelStats sng = probe_aggregation(d, ng, 32);

  const double gap_base = sbase.makespan / std::max(sbase.balanced, 1.0);
  const double gap_ng = sng.makespan / std::max(sng.balanced, 1.0);
  EXPECT_LT(gap_ng, gap_base);   // Figure 8: the balanced/actual gap shrinks
  EXPECT_LT(sng.makespan, sbase.makespan);
}

TEST(Ablation, LasImprovesHitRateOnPowerLawGraph) {
  // The feature matrix must exceed the L2 (23.6k rows x 1 KiB ~ 24 MiB vs
  // 6 MiB) or there is no locality problem to solve.
  const graph::Dataset d = graph::make_dataset(graph::DatasetId::kCollab, 0.4);
  EngineConfig ng_only;
  ng_only.use_las = false;
  EngineConfig ng_las = ng_only;
  ng_las.use_las = true;

  const sim::KernelStats a = probe_aggregation(d, ng_only, 256);
  const sim::KernelStats b = probe_aggregation(d, ng_las, 256);
  EXPECT_GT(b.l2_hit_rate(), a.l2_hit_rate() + 0.02);  // Figure 9: NG+LAS > NG
}

TEST(Ablation, OccupancyTailVisibleWithoutGrouping) {
  const graph::Dataset d = hub_dataset();
  EngineConfig base;
  base.use_neighbor_grouping = false;
  base.use_las = false;
  const sim::KernelStats s = probe_aggregation(d, base, 32);
  // Table 4's phenomenon: a visible fraction of time runs under 50% slots.
  EXPECT_GT(s.timeline.fraction_below(0.5, sim::v100().total_block_slots()), 0.05);
}

TEST(Ablation, AdapterCutsLaunchesOnGat) {
  const graph::Dataset d = graph::make_dataset(graph::DatasetId::kCollab, 0.02);
  models::GatConfig cfg;
  cfg.dims = {16, 8};
  const models::GatParams params = models::init_gat(cfg, 1);
  const models::Matrix x = models::init_features(d.csr.num_nodes, 16, 2);
  const baselines::GatRun run{&cfg, &params, &x};

  EngineConfig no_adapter;
  no_adapter.use_adapter = false;
  no_adapter.use_linear = false;
  EngineConfig adapter_linear;

  OptimizedEngine base(no_adapter), opt(adapter_linear);
  const auto rb = base.run_gat(d, run, ExecMode::kSimulateOnly, sim::v100());
  const auto ro = opt.run_gat(d, run, ExecMode::kSimulateOnly, sim::v100());
  EXPECT_LT(ro.stats.num_launches(), rb.stats.num_launches());
  EXPECT_LT(ro.ms, rb.ms);  // Figure 10a / Table 6 "Adp" direction
}

TEST(Ablation, LinearPropertySavesMoreThanAdapterAlone) {
  const graph::Dataset d = graph::make_dataset(graph::DatasetId::kCollab, 0.02);
  models::GatConfig cfg;
  cfg.dims = {16, 8};
  const models::GatParams params = models::init_gat(cfg, 1);
  const models::Matrix x = models::init_features(d.csr.num_nodes, 16, 2);
  const baselines::GatRun run{&cfg, &params, &x};

  EngineConfig adapter_only;
  adapter_only.use_linear = false;
  EngineConfig adapter_linear;

  OptimizedEngine a(adapter_only), al(adapter_linear);
  const auto ra = a.run_gat(d, run, ExecMode::kSimulateOnly, sim::v100());
  const auto rl = al.run_gat(d, run, ExecMode::kSimulateOnly, sim::v100());
  EXPECT_LT(rl.stats.num_launches(), ra.stats.num_launches());
  EXPECT_LE(rl.ms, ra.ms);  // Figure 10a: +Linear beats Adapter alone
}

TEST(Ablation, SparseFetchRemovesExpansionKernels) {
  const graph::Dataset d = graph::make_dataset(graph::DatasetId::kDdi, 0.2);
  models::SageLstmConfig cfg;
  const models::SageLstmParams params = models::init_sage_lstm(cfg, 3);
  const models::Matrix x = models::init_features(d.csr.num_nodes, cfg.in_feat, 4);
  const baselines::SageLstmRun run{&cfg, &params, &x};

  EngineConfig base_cfg;
  base_cfg.sage_level = engine::SageOptLevel::kBase;
  EngineConfig spf_cfg;
  spf_cfg.sage_level = engine::SageOptLevel::kSparseFetch;

  OptimizedEngine base(base_cfg), spf(spf_cfg);
  const auto rb = base.run_sage_lstm(d, run, ExecMode::kSimulateOnly, sim::v100());
  const auto rs = spf.run_sage_lstm(d, run, ExecMode::kSimulateOnly, sim::v100());
  EXPECT_DOUBLE_EQ(rs.stats.cycles_in_phase("expansion"), 0.0);
  EXPECT_GT(rb.stats.cycles_in_phase("expansion"), 0.0);
  EXPECT_LT(rs.stats.num_launches(), rb.stats.num_launches());
}

TEST(Ablation, RedundancyBypassCutsTransformationWork) {
  const graph::Dataset d = graph::make_dataset(graph::DatasetId::kDdi, 0.2);
  models::SageLstmConfig cfg;
  const models::SageLstmParams params = models::init_sage_lstm(cfg, 5);
  const models::Matrix x = models::init_features(d.csr.num_nodes, cfg.in_feat, 6);
  const baselines::SageLstmRun run{&cfg, &params, &x};

  EngineConfig spf_cfg;
  spf_cfg.sage_level = engine::SageOptLevel::kSparseFetch;
  EngineConfig byp_cfg;
  byp_cfg.sage_level = engine::SageOptLevel::kSparseFetchBypass;

  OptimizedEngine spf(spf_cfg), byp(byp_cfg);
  const auto rs = spf.run_sage_lstm(d, run, ExecMode::kSimulateOnly, sim::v100());
  const auto rb = byp.run_sage_lstm(d, run, ExecMode::kSimulateOnly, sim::v100());
  // One pre-transform instead of `steps` per-step transforms.
  EXPECT_LT(rb.stats.cycles_in_phase("transformation"),
            rs.stats.cycles_in_phase("transformation") / 4.0);
  EXPECT_LT(rb.ms, rs.ms);  // Figure 11 direction
}

TEST(Ablation, EngineBeatsDglOnGat) {
  // The headline claim at test scale: Ours < DGL on GAT (Figure 7b).
  const graph::Dataset d = graph::make_dataset(graph::DatasetId::kCollab, 0.1);
  models::GatConfig cfg;
  cfg.dims = {128, 64, 32};
  const models::GatParams params = models::init_gat(cfg, 7);
  const models::Matrix x = models::init_features(d.csr.num_nodes, 128, 8);
  const baselines::GatRun run{&cfg, &params, &x};

  baselines::DglBackend dgl;
  OptimizedEngine ours;
  const auto rd = dgl.run_gat(d, run, ExecMode::kSimulateOnly, sim::v100());
  const auto ro = ours.run_gat(d, run, ExecMode::kSimulateOnly, sim::v100());
  EXPECT_LT(ro.ms, rd.ms);
  EXPECT_GT(rd.ms / ro.ms, 1.5);  // well clear of noise
}

}  // namespace
}  // namespace gnnbridge
