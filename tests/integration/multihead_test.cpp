// Multi-head GAT: semantics and the op-count pressure of Observation 3.
#include <gtest/gtest.h>

#include "baselines/dgl.hpp"
#include "engine/engine.hpp"
#include "models/layers.hpp"
#include "models/multihead_gat.hpp"
#include "tensor/ops.hpp"
#include "tests/testing/util.hpp"

namespace gnnbridge {
namespace {

using engine::OptimizedEngine;
using kernels::ExecMode;
using models::Matrix;

struct MhFixture : public ::testing::Test {
  graph::Dataset data = graph::make_dataset(graph::DatasetId::kCollab, 0.01);
  models::MultiHeadGatConfig cfg;
  models::MultiHeadGatParams params;
  Matrix x;

  MhFixture() {
    cfg.in_feat = 16;
    cfg.head_dim = 6;
    cfg.heads = 3;
    params = models::init_multihead_gat(cfg, 1);
    x = models::init_features(data.csr.num_nodes, 16, 2);
  }
};

TEST_F(MhFixture, ReferenceOutputShape) {
  const Matrix out = models::multihead_gat_forward_ref(data.csr, x, cfg, params);
  EXPECT_EQ(out.rows(), data.csr.num_nodes);
  EXPECT_EQ(out.cols(), 18);
}

TEST_F(MhFixture, SingleHeadMatchesGatLayer) {
  models::MultiHeadGatConfig one = cfg;
  one.heads = 1;
  const models::MultiHeadGatParams p1 = models::init_multihead_gat(one, 3);
  const Matrix out = models::multihead_gat_forward_ref(data.csr, x, one, p1);
  // Same math as the single-head GAT layer primitives.
  const Matrix t = tensor::gemm(x, p1.weight[0]);
  const auto scores = models::edge_gat(data.csr, t, p1.att_l[0], p1.att_r[0]);
  const Matrix expect = models::layer_softmax_aggr(data.csr, t, scores);
  EXPECT_TRUE(tensor::allclose(out, expect, 1e-4f, 1e-5f));
}

TEST_F(MhFixture, DglBackendMatchesReference) {
  const Matrix expect = models::multihead_gat_forward_ref(data.csr, x, cfg, params);
  baselines::DglBackend dgl;
  ASSERT_TRUE(dgl.supports_multihead());
  const auto r =
      dgl.run_multihead_gat(data, {&cfg, &params, &x}, ExecMode::kFull, sim::v100());
  EXPECT_TRUE(tensor::allclose(r.output, expect, 1e-3f, 1e-4f));
}

TEST_F(MhFixture, EngineMatchesReference) {
  const Matrix expect = models::multihead_gat_forward_ref(data.csr, x, cfg, params);
  OptimizedEngine e;
  const auto r = e.run_multihead_gat(data, {&cfg, &params, &x}, ExecMode::kFull, sim::v100());
  EXPECT_TRUE(tensor::allclose(r.output, expect, 1e-3f, 1e-4f));
}

TEST_F(MhFixture, OpCountScalesWithHeadsOnDglButFusionContainsIt) {
  baselines::DglBackend dgl;
  OptimizedEngine ours;
  const auto rd =
      dgl.run_multihead_gat(data, {&cfg, &params, &x}, ExecMode::kSimulateOnly, sim::v100());
  const auto ro =
      ours.run_multihead_gat(data, {&cfg, &params, &x}, ExecMode::kSimulateOnly, sim::v100());
  // DGL: 10 kernels/head; ours: 5/head.
  EXPECT_EQ(rd.stats.num_launches(), cfg.heads * 10);
  EXPECT_EQ(ro.stats.num_launches(), cfg.heads * 5);
  EXPECT_LT(ro.ms, rd.ms);
}

TEST_F(MhFixture, MoreHeadsMoreKernels) {
  OptimizedEngine e;
  models::MultiHeadGatConfig big = cfg;
  big.heads = 6;
  const models::MultiHeadGatParams pbig = models::init_multihead_gat(big, 4);
  const auto small =
      e.run_multihead_gat(data, {&cfg, &params, &x}, ExecMode::kSimulateOnly, sim::v100());
  const auto large =
      e.run_multihead_gat(data, {&big, &pbig, &x}, ExecMode::kSimulateOnly, sim::v100());
  EXPECT_EQ(large.stats.num_launches(), 2 * small.stats.num_launches());
}

}  // namespace
}  // namespace gnnbridge
