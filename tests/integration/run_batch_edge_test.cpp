// run_batch edge cases and breaker recovery (DESIGN.md §12/§14
// satellites): an empty job list is a successful no-op, duplicate
// caller-supplied request ids are disambiguated with "#n" suffixes in
// every emitted artifact, and the circuit breaker walks
// open -> half-open probe -> closed under a concurrent clean batch.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "graph/datasets.hpp"
#include "obs/journal.hpp"
#include "par/thread_pool.hpp"
#include "prof/metrics_json.hpp"

namespace gnnbridge {
namespace {

using engine::EngineConfig;
using engine::OptimizedEngine;

class RunBatchEdge : public ::testing::Test {
 protected:
  void SetUp() override {
    prof::MetricsSink::instance().clear();
    obs::EventJournal::instance().clear();
    obs::EventJournal::instance().set_enabled(true);
  }
  void TearDown() override {
    obs::EventJournal::instance().set_enabled(false);
    obs::EventJournal::instance().clear();
    prof::MetricsSink::instance().clear();
    par::set_max_threads(0);
  }
};

struct Inputs {
  graph::Dataset collab = graph::make_dataset(graph::DatasetId::kCollab, 0.02);
  models::GcnConfig gcn_cfg;
  models::GcnParams gcn_params;
  models::Matrix x;
  baselines::GcnRun gcn;

  Inputs() {
    gcn_cfg.dims = {32, 16};
    gcn_params = models::init_gcn(gcn_cfg, 1);
    x = models::init_features(collab.csr.num_nodes, 32, 4);
    gcn = {&gcn_cfg, &gcn_params, &x};
  }
};

const Inputs& inputs() {
  static const Inputs* in = new Inputs();
  return *in;
}

OptimizedEngine::BatchJob clean_job() {
  const Inputs& in = inputs();
  OptimizedEngine::BatchJob job;
  job.data = &in.collab;
  job.gcn = &in.gcn;
  job.mode = kernels::ExecMode::kSimulateOnly;
  job.spec = sim::v100();
  return job;
}

TEST_F(RunBatchEdge, EmptyJobListIsASuccessfulNoOp) {
  OptimizedEngine eng;
  const std::vector<OptimizedEngine::BatchJob> none;
  const auto results = eng.run_batch(none);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(obs::EventJournal::instance().size(), 0u)
      << "an empty batch must not journal anything";
  // The batch counter is not consumed: the next real batch is batch 0.
  std::vector<OptimizedEngine::BatchJob> one = {clean_job()};
  const auto after = eng.run_batch(one);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_TRUE(after[0].status.ok());
  EXPECT_NE(obs::EventJournal::instance().to_jsonl().find("\"req\":\"req-0-0\""),
            std::string::npos);
}

TEST_F(RunBatchEdge, DuplicateCallerRequestIdsAreDisambiguated) {
  OptimizedEngine eng;
  std::vector<OptimizedEngine::BatchJob> jobs(3, clean_job());
  jobs[0].request_id = "dup";
  jobs[1].request_id = "dup";
  jobs[2].request_id = "dup";
  const auto results = eng.run_batch(jobs);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) EXPECT_TRUE(r.status.ok());
  const std::string jsonl = obs::EventJournal::instance().to_jsonl();
  EXPECT_NE(jsonl.find("\"req\":\"dup\""), std::string::npos) << jsonl;
  EXPECT_NE(jsonl.find("\"req\":\"dup#2\""), std::string::npos)
      << "second occurrence must be suffixed:\n" << jsonl;
  EXPECT_NE(jsonl.find("\"req\":\"dup#3\""), std::string::npos)
      << "third occurrence must be suffixed:\n" << jsonl;
}

TEST_F(RunBatchEdge, BreakerRecoversHalfOpenToClosedUnderConcurrentBatch) {
  par::set_max_threads(8);
  EngineConfig cfg;
  cfg.breaker.failure_threshold = 3;  // the default, pinned for the test
  OptimizedEngine eng(cfg);

  // Three consecutive failures on one key (every launch shot faulted, no
  // retry budget) trip the breaker open.
  std::vector<OptimizedEngine::BatchJob> failing(3, clean_job());
  for (auto& job : failing) {
    job.fault_plan = "sim_launch=*";
    job.max_attempts = 1;
  }
  const auto failed = eng.run_batch(failing);
  for (const auto& r : failed) {
    EXPECT_FALSE(r.status.ok()) << "the fault plan must fail every attempt";
  }
  EXPECT_GE(prof::MetricsSink::instance().robustness().breaker_trips, 1u);

  // A concurrent clean batch on the same key: the first open admissions
  // run degraded, every probe_interval-th runs as a half-open probe at
  // full optimization, and the probe's success closes the breaker.
  std::vector<OptimizedEngine::BatchJob> clean(8, clean_job());
  const auto probed = eng.run_batch(clean);
  std::set<std::string> states;
  for (const auto& r : probed) {
    EXPECT_TRUE(r.status.ok()) << r.status.to_string();
    states.insert(r.breaker_state);
  }
  EXPECT_TRUE(states.count("open")) << "pre-probe admissions run degraded under an open breaker";
  EXPECT_TRUE(states.count("half_open")) << "a probe admission must appear";
  EXPECT_GE(prof::MetricsSink::instance().robustness().breaker_recoveries, 1u)
      << "the successful probe must close the breaker";

  // Fully recovered: the next batch admits closed everywhere.
  const auto recovered = eng.run_batch(clean);
  for (const auto& r : recovered) {
    EXPECT_TRUE(r.status.ok());
    EXPECT_EQ(r.breaker_state, "closed");
  }
}

}  // namespace
}  // namespace gnnbridge
