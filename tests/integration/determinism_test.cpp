// Cross-thread-count determinism: the contract of DESIGN.md §11.
//
// The full optimized engine (LAS + neighbor grouping + adapter + tuner)
// must produce byte-identical metrics-v3 documents — every counter, every
// kernel, every gap attribution — at 1, 2 and 8 host threads. Only
// meta.threads (pinned here so the documents compare equal) and wall-clock
// time may differ. run_batch must likewise match sequential execution.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "graph/datasets.hpp"
#include "par/thread_pool.hpp"
#include "prof/metrics_json.hpp"

namespace gnnbridge {
namespace {

using engine::EngineConfig;
using engine::OptimizedEngine;
using kernels::ExecMode;

class ThreadCountDeterminism : public ::testing::Test {
 protected:
  void TearDown() override { par::set_max_threads(0); }
};

// Shared inputs, built once: both thread-count sweeps and the batch test
// must see identical graphs and weights.
struct Inputs {
  graph::Dataset collab = graph::make_dataset(graph::DatasetId::kCollab, 0.02);
  graph::Dataset arxiv = graph::make_dataset(graph::DatasetId::kArxiv, 0.02);
  models::GcnConfig gcn_cfg;
  models::GatConfig gat_cfg;
  models::SageLstmConfig sage_cfg;
  models::GcnParams gcn_params;
  models::GatParams gat_params;
  models::SageLstmParams sage_params;
  models::Matrix x_collab, x_arxiv, x_sage;

  Inputs() {
    gcn_cfg.dims = {32, 16};
    gat_cfg.dims = {32, 16};
    sage_cfg.steps = 4;
    gcn_params = models::init_gcn(gcn_cfg, 1);
    gat_params = models::init_gat(gat_cfg, 2);
    sage_params = models::init_sage_lstm(sage_cfg, 3);
    x_collab = models::init_features(collab.csr.num_nodes, 32, 4);
    x_arxiv = models::init_features(arxiv.csr.num_nodes, 32, 4);
    x_sage = models::init_features(arxiv.csr.num_nodes, sage_cfg.in_feat, 5);
  }
};

const Inputs& inputs() {
  static const Inputs* in = new Inputs();
  return *in;
}

// Runs GCN + GAT + GraphSAGE-LSTM through a fresh full-stack engine and
// serializes every counter into one metrics document. meta is pinned (not
// collected) so documents from different thread counts are comparable
// byte for byte.
std::string run_all_and_serialize() {
  const Inputs& in = inputs();
  EngineConfig cfg;
  cfg.auto_tune = true;  // tuner probes are a parallel call site too
  OptimizedEngine e(cfg);

  prof::MetricsSink& sink = prof::MetricsSink::instance();
  sink.clear();
  sink.configure("determinism", 0.02);
  sink.set_meta(prof::MetaInfo{.git_sha = "fixed",
                               .timestamp = "2026-01-01T00:00:00Z",
                               .hostname = "fixed",
                               .scale_env = "0.02",
                               .threads = 0});

  const auto record = [&](const char* model, const graph::Dataset& data,
                          const baselines::RunResult& r) {
    EXPECT_TRUE(r.status.ok()) << model << ": " << r.status.to_string();
    sink.record({.label = std::string(model) + "/ours/" + data.name,
                 .model = model,
                 .backend = "ours",
                 .dataset = data.name,
                 .ms = r.ms,
                 .oom = r.oom,
                 .stats = r.stats,
                 .spec = sim::v100()});
  };
  record("gcn", in.collab,
         e.run_gcn(in.collab, {&in.gcn_cfg, &in.gcn_params, &in.x_collab},
                   ExecMode::kSimulateOnly, sim::v100()));
  record("gat", in.collab,
         e.run_gat(in.collab, {&in.gat_cfg, &in.gat_params, &in.x_collab},
                   ExecMode::kSimulateOnly, sim::v100()));
  record("sage_lstm", in.arxiv,
         e.run_sage_lstm(in.arxiv, {&in.sage_cfg, &in.sage_params, &in.x_sage},
                         ExecMode::kSimulateOnly, sim::v100()));
  std::string doc = sink.to_json();
  sink.clear();
  return doc;
}

TEST_F(ThreadCountDeterminism, MetricsDocumentByteIdenticalAt1_2_8Threads) {
  par::set_max_threads(1);
  const std::string serial = run_all_and_serialize();
  ASSERT_FALSE(serial.empty());
  for (int threads : {2, 8}) {
    par::set_max_threads(threads);
    const std::string parallel = run_all_and_serialize();
    // EXPECT_EQ on the whole document: a counter that drifts with the
    // thread count shows up as a precise byte diff.
    EXPECT_EQ(parallel, serial) << "at " << threads << " threads";
  }
}

TEST_F(ThreadCountDeterminism, CollectedMetaRecordsTheThreadCount) {
  par::set_max_threads(5);
  EXPECT_EQ(prof::collect_meta().threads, 5);
  par::set_max_threads(0);
  EXPECT_EQ(prof::collect_meta().threads, par::max_threads());
}

TEST_F(ThreadCountDeterminism, RunBatchMatchesSequentialRuns) {
  const Inputs& in = inputs();
  par::set_max_threads(8);

  EngineConfig cfg;
  cfg.auto_tune = true;
  OptimizedEngine batch_engine(cfg);
  std::vector<OptimizedEngine::BatchJob> jobs(3);
  baselines::GcnRun gcn{&in.gcn_cfg, &in.gcn_params, &in.x_collab};
  baselines::GatRun gat{&in.gat_cfg, &in.gat_params, &in.x_collab};
  baselines::GcnRun gcn2{&in.gcn_cfg, &in.gcn_params, &in.x_arxiv};
  jobs[0] = {.data = &in.collab, .gcn = &gcn, .spec = sim::v100()};
  jobs[1] = {.data = &in.collab, .gat = &gat, .spec = sim::v100()};
  jobs[2] = {.data = &in.arxiv, .gcn = &gcn2, .spec = sim::v100()};
  const std::vector<baselines::RunResult> batched = batch_engine.run_batch(jobs);
  ASSERT_EQ(batched.size(), 3u);

  OptimizedEngine seq_engine(cfg);
  const baselines::RunResult expected[] = {
      seq_engine.run_gcn(in.collab, gcn, ExecMode::kSimulateOnly, sim::v100()),
      seq_engine.run_gat(in.collab, gat, ExecMode::kSimulateOnly, sim::v100()),
      seq_engine.run_gcn(in.arxiv, gcn2, ExecMode::kSimulateOnly, sim::v100()),
  };
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(batched[i].status.ok()) << i << ": " << batched[i].status.to_string();
    EXPECT_DOUBLE_EQ(batched[i].ms, expected[i].ms) << i;
    EXPECT_DOUBLE_EQ(batched[i].stats.total_cycles, expected[i].stats.total_cycles) << i;
    EXPECT_DOUBLE_EQ(batched[i].stats.total_flops(), expected[i].stats.total_flops()) << i;
    EXPECT_EQ(batched[i].stats.num_launches(), expected[i].stats.num_launches()) << i;
    EXPECT_EQ(batched[i].stats.total_hits(), expected[i].stats.total_hits()) << i;
    EXPECT_EQ(batched[i].stats.total_misses(), expected[i].stats.total_misses()) << i;
    EXPECT_EQ(batched[i].stats.kernels.size(), expected[i].stats.kernels.size()) << i;
  }
  // Both engines saw the same two graphs; their caches must agree.
  EXPECT_EQ(batch_engine.las_cache_size(), seq_engine.las_cache_size());
  EXPECT_EQ(batch_engine.tuned_cache_size(), seq_engine.tuned_cache_size());
}

TEST_F(ThreadCountDeterminism, RunBatchRejectsEmptyJob) {
  par::set_max_threads(2);
  OptimizedEngine e;
  std::vector<OptimizedEngine::BatchJob> jobs(1);  // no data, no model
  const auto results = e.run_batch(jobs);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].status.ok());
}

}  // namespace
}  // namespace gnnbridge
