// Resilient run_batch determinism (DESIGN.md §11 + §12): with per-job
// fault plans, bounded deadlines, retries and the circuit breaker all
// active, the metrics-v4 document — kernel counters, degradations AND the
// robustness block — must stay byte-identical at 1, 2 and 8 host threads.
// Also pins the per-job resilience surface of RunResult (attempts,
// timed_out, breaker_state) for deadline expiry and external cancellation.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "graph/datasets.hpp"
#include "par/thread_pool.hpp"
#include "prof/metrics_json.hpp"
#include "rt/deadline.hpp"
#include "rt/status.hpp"

namespace gnnbridge {
namespace {

using engine::EngineConfig;
using engine::OptimizedEngine;

class SoakDeterminism : public ::testing::Test {
 protected:
  void TearDown() override { par::set_max_threads(0); }
};

struct Inputs {
  graph::Dataset collab = graph::make_dataset(graph::DatasetId::kCollab, 0.02);
  graph::Dataset arxiv = graph::make_dataset(graph::DatasetId::kArxiv, 0.02);
  models::GcnConfig gcn_cfg;
  models::GatConfig gat_cfg;
  models::GcnParams gcn_params;
  models::GatParams gat_params;
  models::Matrix x_collab, x_arxiv;

  Inputs() {
    gcn_cfg.dims = {32, 16};
    gat_cfg.dims = {32, 16};
    gcn_params = models::init_gcn(gcn_cfg, 1);
    gat_params = models::init_gat(gat_cfg, 2);
    x_collab = models::init_features(collab.csr.num_nodes, 32, 4);
    x_arxiv = models::init_features(arxiv.csr.num_nodes, 32, 4);
  }
};

const Inputs& inputs() {
  static const Inputs* in = new Inputs();
  return *in;
}

// A small soak stream exercising every resilience path that must stay
// deterministic: a tuner-probe burst (degrades auto_tune), a two-shot
// launch fault (absorbed by two ladder rungs), a LAS fault (falls back to
// natural order), and clean jobs sharing the warm caches — all under a
// generous bounded deadline with retry budget.
std::vector<OptimizedEngine::BatchJob> make_stream(const baselines::GcnRun& gcn_collab,
                                                   const baselines::GatRun& gat_collab,
                                                   const baselines::GcnRun& gcn_arxiv) {
  const Inputs& in = inputs();
  const char* plans[] = {"tuner_probe=3", "sim_launch=2", "", "las_cluster"};
  std::vector<OptimizedEngine::BatchJob> jobs(8);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    OptimizedEngine::BatchJob& job = jobs[i];
    switch (i % 4) {
      case 0: job.data = &in.collab; job.gcn = &gcn_collab; break;
      case 1: job.data = &in.collab; job.gat = &gat_collab; break;
      case 2: job.data = &in.arxiv; job.gcn = &gcn_arxiv; break;
      case 3: job.data = &in.collab; job.gat = &gat_collab; break;
    }
    job.spec = sim::v100();
    job.deadline = rt::Deadline::cycles(1e9);
    job.max_attempts = 2;
    job.fault_plan = plans[i % 4];
  }
  return jobs;
}

// One full soak pass through a fresh engine, serialized with pinned meta.
std::string run_soak_and_serialize() {
  const Inputs& in = inputs();
  EngineConfig cfg;
  cfg.auto_tune = true;
  OptimizedEngine eng(cfg);

  prof::MetricsSink& sink = prof::MetricsSink::instance();
  sink.clear();
  sink.configure("soak_determinism", 0.02);
  sink.set_meta(prof::MetaInfo{.git_sha = "fixed",
                               .timestamp = "2026-01-01T00:00:00Z",
                               .hostname = "fixed",
                               .scale_env = "0.02",
                               .threads = 0});

  baselines::GcnRun gcn_collab{&in.gcn_cfg, &in.gcn_params, &in.x_collab};
  baselines::GatRun gat_collab{&in.gat_cfg, &in.gat_params, &in.x_collab};
  baselines::GcnRun gcn_arxiv{&in.gcn_cfg, &in.gcn_params, &in.x_arxiv};
  const auto jobs = make_stream(gcn_collab, gat_collab, gcn_arxiv);
  const std::vector<baselines::RunResult> results = eng.run_batch(jobs);
  EXPECT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].status.ok())
        << "job " << i << ": " << results[i].status.to_string();
    EXPECT_FALSE(results[i].timed_out) << "job " << i;
    EXPECT_EQ(results[i].breaker_state, "closed") << "job " << i;
    sink.record({.label = "job" + std::to_string(i),
                 .model = jobs[i].gcn ? "gcn" : "gat",
                 .backend = "ours",
                 .dataset = jobs[i].data->name,
                 .ms = results[i].ms,
                 .oom = results[i].oom,
                 .stats = results[i].stats,
                 .spec = sim::v100()});
  }
  const prof::RobustnessStats rob = sink.robustness();
  EXPECT_EQ(rob.jobs, jobs.size());
  EXPECT_GE(rob.attempts, rob.jobs);
  EXPECT_EQ(rob.deadline_hits, 0u);
  EXPECT_EQ(rob.cancellations, 0u);
  std::string doc = sink.to_json();
  sink.clear();
  return doc;
}

TEST_F(SoakDeterminism, FaultedSoakMetricsByteIdenticalAt1_2_8Threads) {
  par::set_max_threads(1);
  const std::string serial = run_soak_and_serialize();
  ASSERT_FALSE(serial.empty());
  for (int threads : {2, 8}) {
    par::set_max_threads(threads);
    const std::string parallel = run_soak_and_serialize();
    EXPECT_EQ(parallel, serial) << "at " << threads << " threads";
  }
}

TEST_F(SoakDeterminism, DeadlineExpiryMarksTheJobWithoutBlockingHealthyOnes) {
  const Inputs& in = inputs();
  par::set_max_threads(4);
  EngineConfig cfg;
  OptimizedEngine eng(cfg);
  baselines::GcnRun gcn{&in.gcn_cfg, &in.gcn_params, &in.x_collab};
  baselines::GatRun gat{&in.gat_cfg, &in.gat_params, &in.x_collab};

  std::vector<OptimizedEngine::BatchJob> jobs(2);
  jobs[0].data = &in.collab;
  jobs[0].gcn = &gcn;
  jobs[0].spec = sim::v100();
  jobs[0].deadline = rt::Deadline::cycles(10.0);  // expires on the first launch
  jobs[0].max_attempts = 3;
  jobs[1].data = &in.collab;
  jobs[1].gat = &gat;
  jobs[1].spec = sim::v100();

  const auto results = eng.run_batch(jobs);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].status.code(), rt::StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(results[0].timed_out);
  // Deadline expiry is fatal (rt/retry.hpp): the retry budget must not be
  // spent re-running a job whose sim-time budget is gone.
  EXPECT_EQ(results[0].attempts, 1);
  EXPECT_EQ(results[0].breaker_state, "closed");
  EXPECT_TRUE(results[1].status.ok()) << results[1].status.to_string();
  EXPECT_FALSE(results[1].timed_out);

  const prof::RobustnessStats rob = prof::MetricsSink::instance().robustness();
  EXPECT_GE(rob.deadline_hits, 1u);
  prof::MetricsSink::instance().clear();
}

TEST_F(SoakDeterminism, CancelledTokenEndsTheJobAsCancelled) {
  const Inputs& in = inputs();
  par::set_max_threads(2);
  OptimizedEngine eng;
  baselines::GcnRun gcn{&in.gcn_cfg, &in.gcn_params, &in.x_collab};

  rt::CancelToken token;
  token.cancel(rt::Status(rt::StatusCode::kCancelled, "caller gave up"));
  std::vector<OptimizedEngine::BatchJob> jobs(1);
  jobs[0].data = &in.collab;
  jobs[0].gcn = &gcn;
  jobs[0].spec = sim::v100();
  jobs[0].cancel = &token;
  jobs[0].max_attempts = 3;

  const auto results = eng.run_batch(jobs);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status.code(), rt::StatusCode::kCancelled);
  EXPECT_FALSE(results[0].timed_out);
  EXPECT_EQ(results[0].attempts, 1);  // kCancelled is fatal: no retries

  const prof::RobustnessStats rob = prof::MetricsSink::instance().robustness();
  EXPECT_GE(rob.cancellations, 1u);
  prof::MetricsSink::instance().clear();
}

}  // namespace
}  // namespace gnnbridge
