// Engine-level training: the simulated training step must produce exactly
// the gradients and updates of the host reference, and the sampling
// workload must run with online-only optimizations.
#include <gtest/gtest.h>

#include "engine/engine.hpp"
#include "graph/sampling.hpp"
#include "models/gcn_grad.hpp"
#include "tests/testing/util.hpp"

namespace gnnbridge {
namespace {

using engine::OptimizedEngine;
using kernels::ExecMode;
using models::Matrix;

struct TrainFixture : public ::testing::Test {
  graph::Dataset data = graph::make_dataset(graph::DatasetId::kCollab, 0.01);
  models::GcnConfig cfg;
  models::GcnParams params;
  Matrix x, target;

  TrainFixture() {
    cfg.dims = {16, 8, 4};
    params = models::init_gcn(cfg, 3);
    x = models::init_features(data.csr.num_nodes, 16, 4);
    target = testing::random_matrix(data.csr.num_nodes, 4, 5, -0.5f, 0.5f);
  }
};

TEST_F(TrainFixture, EngineGradientsMatchHostReference) {
  // Host reference.
  const models::GcnForwardCache cache = models::gcn_forward_cached(data.csr, x, cfg, params);
  const models::GcnGrads expect = models::gcn_backward(
      data.csr, cfg, params, cache, models::mse_loss_grad(cache.inputs.back(), target));
  const float expect_loss = models::mse_loss(cache.inputs.back(), target);

  // Engine (simulated kernels), zero learning rate so params stay put.
  models::GcnParams engine_params = params;
  OptimizedEngine e;
  models::GcnGrads got;
  const auto r = e.train_gcn_step(data, cfg, engine_params, x, target, 0.0f,
                                  ExecMode::kFull, sim::v100(), &got);
  EXPECT_NEAR(r.loss, expect_loss, 1e-5f);
  ASSERT_EQ(got.weight.size(), expect.weight.size());
  for (std::size_t l = 0; l < expect.weight.size(); ++l) {
    EXPECT_TRUE(tensor::allclose(got.weight[l], expect.weight[l], 1e-3f, 1e-5f)) << l;
    EXPECT_TRUE(tensor::allclose(got.bias[l], expect.bias[l], 1e-3f, 1e-5f)) << l;
  }
  EXPECT_TRUE(tensor::allclose(got.input, expect.input, 1e-3f, 1e-6f));
  // lr = 0: parameters unchanged.
  EXPECT_TRUE(tensor::allclose(engine_params.weight[0], params.weight[0], 1e-6f, 1e-7f));
}

TEST_F(TrainFixture, EngineSgdMatchesHostSgd) {
  models::GcnParams host_params = params;
  const models::GcnForwardCache cache =
      models::gcn_forward_cached(data.csr, x, cfg, host_params);
  const models::GcnGrads grads = models::gcn_backward(
      data.csr, cfg, host_params, cache, models::mse_loss_grad(cache.inputs.back(), target));
  models::sgd_step(host_params, grads, 0.1f);

  models::GcnParams engine_params = params;
  OptimizedEngine e;
  e.train_gcn_step(data, cfg, engine_params, x, target, 0.1f, ExecMode::kFull, sim::v100());
  for (std::size_t l = 0; l < params.weight.size(); ++l) {
    EXPECT_TRUE(tensor::allclose(engine_params.weight[l], host_params.weight[l], 1e-3f, 1e-5f));
    EXPECT_TRUE(tensor::allclose(engine_params.bias[l], host_params.bias[l], 1e-3f, 1e-5f));
  }
}

TEST_F(TrainFixture, LossDecreasesOverSteps) {
  models::GcnParams p = params;
  OptimizedEngine e;
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 8; ++step) {
    const auto r = e.train_gcn_step(data, cfg, p, x, target, 0.5f, ExecMode::kFull, sim::v100());
    if (step == 0) first = r.loss;
    last = r.loss;
  }
  EXPECT_LT(last, first);
}

TEST_F(TrainFixture, TrainingStepCountsForwardAndBackwardKernels) {
  models::GcnParams p = params;
  OptimizedEngine e;
  const auto fwd = e.run_gcn(data, {&cfg, &p, &x}, ExecMode::kSimulateOnly, sim::v100());
  const auto step =
      e.train_gcn_step(data, cfg, p, x, target, 0.1f, ExecMode::kSimulateOnly, sim::v100());
  EXPECT_GT(step.run.stats.num_launches(), fwd.stats.num_launches());
  EXPECT_GT(step.run.stats.cycles_in_phase("backward"), 0.0);
  EXPECT_GT(step.run.ms, fwd.ms);
}

TEST(TrainingSampling, MinibatchPipelineRunsWithOnlineOptsOnly) {
  // The paper's §5.2 note: under graph sampling the structure changes
  // every iteration, so LAS (offline) is off; NG + fusion still apply.
  const graph::Dataset full = graph::make_dataset(graph::DatasetId::kProtein, 0.05);
  tensor::Rng rng(7);
  engine::EngineConfig cfg;
  cfg.use_las = false;  // offline analysis unusable under sampling
  OptimizedEngine e(cfg);

  models::GcnConfig mcfg;
  mcfg.dims = {8, 4};
  const models::GcnParams params = models::init_gcn(mcfg, 8);
  const Matrix x_full = models::init_features(full.csr.num_nodes, 8, 9);

  for (int iter = 0; iter < 3; ++iter) {
    const auto centers = graph::sample_batch_centers(full.csr.num_nodes, 64, rng);
    const graph::SampledBatch batch = graph::sample_neighbors(full.csr, centers, 8, rng);
    // Build a Dataset view over the sampled subgraph; features stay the
    // full matrix (columns index original ids), so slice them down.
    graph::Dataset mini;
    mini.name = "minibatch";
    mini.csr = batch.csr;
    // Column ids reference the full graph; remap into a compact feature
    // matrix by using the full x (ids < full N >= batch rows is fine for
    // the reference aggregation as long as src ids are in range of x).
    // For the engine the feature matrix must have one row per id, so we
    // pass the full-width feature matrix and extend the CSR to that size.
    mini.csr.num_nodes = full.csr.num_nodes;
    mini.csr.row_ptr.resize(static_cast<std::size_t>(full.csr.num_nodes) + 1,
                            mini.csr.row_ptr.back());
    mini.coo = graph::coo_from_csr(mini.csr);
    mini.csc = graph::csc_from_coo(mini.coo);
    mini.stats = graph::degree_stats(mini.csr);

    const baselines::GcnRun run{&mcfg, &params, &x_full};
    const auto r = e.run_gcn(mini, run, ExecMode::kFull, sim::v100());
    EXPECT_GT(r.stats.num_launches(), 0);
    EXPECT_EQ(r.output.rows(), full.csr.num_nodes);
  }
}

}  // namespace
}  // namespace gnnbridge
