// The fault matrix: every named seam, when armed, must leave the system
// in its documented fallback state — the engine completes the run with
// the responsible knob degraded and a degradations[] event recorded
// (las_cluster, tuner_probe, fusion_pass, sim_launch), write_file retries
// through metrics_write, and dataset_load surfaces a structured error.
//
// FaultInjector and MetricsSink are process singletons; each TEST runs in
// its own process under gtest_discover_tests, so plans cannot leak across
// tests. Every test still installs its plan explicitly and clears on exit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "engine/engine.hpp"
#include "graph/datasets.hpp"
#include "models/reference.hpp"
#include "prof/metrics_json.hpp"
#include "rt/fault.hpp"
#include "tests/testing/util.hpp"

namespace gnnbridge {
namespace {

using engine::EngineConfig;
using engine::OptimizedEngine;
using kernels::ExecMode;

struct GcnFixture {
  graph::Dataset data = graph::make_dataset(graph::DatasetId::kCollab, 0.02);
  models::GcnConfig cfg;
  models::GcnParams params;
  models::Matrix x;
  models::Matrix expect;

  GcnFixture() {
    cfg.dims = {16, 8, 4};
    params = models::init_gcn(cfg, 1);
    x = models::init_features(data.csr.num_nodes, 16, 2);
    expect = models::gcn_forward_ref(data.csr, x, cfg, params);
  }
};

// Arms `plan`, runs GCN under `ecfg`, and asserts the documented fallback:
// run completed (ok status), numerics intact, `knob` reported degraded,
// and one injected degradation event recorded against `seam`.
void expect_degraded_but_correct(const std::string& plan, EngineConfig ecfg,
                                 std::string_view seam, std::string_view knob) {
  auto& sink = prof::MetricsSink::instance();
  sink.clear();
  ASSERT_TRUE(rt::FaultInjector::instance().set_plan(plan));

  const GcnFixture f;
  OptimizedEngine e(ecfg);
  const auto r = e.run_gcn(f.data, {&f.cfg, &f.params, &f.x}, ExecMode::kFull, sim::v100());
  rt::FaultInjector::instance().clear();

  ASSERT_TRUE(r.status.ok()) << r.status.to_string();
  EXPECT_TRUE(tensor::allclose(r.output, f.expect, 2e-3f, 2e-4f))
      << "degraded run must still compute the right answer";

  const auto knobs = e.degraded_knobs();
  EXPECT_NE(std::find(knobs.begin(), knobs.end(), std::string(knob)), knobs.end())
      << "expected knob '" << knob << "' in the degraded set";

  ASSERT_GE(sink.degradation_count(), 1u);
  bool found = false;
  for (const auto& ev : sink.degradations()) {
    if (ev.seam == seam && ev.knob == knob) {
      found = true;
      EXPECT_TRUE(ev.injected) << "fault-plan failures must be flagged injected";
      EXPECT_FALSE(ev.action.empty());
      EXPECT_NE(ev.detail.find("FAULT_INJECTED"), std::string::npos);
    }
  }
  EXPECT_TRUE(found) << "no degradation event for seam '" << seam << "'";
  sink.clear();
}

TEST(FaultMatrix, LasClusterFaultFallsBackToNaturalOrder) {
  expect_degraded_but_correct("las_cluster", EngineConfig{}, rt::kSeamLasCluster,
                              rt::kKnobLas);
}

TEST(FaultMatrix, TunerProbeFaultFallsBackToHeuristicBound) {
  EngineConfig ecfg;
  ecfg.auto_tune = true;
  expect_degraded_but_correct("tuner_probe", ecfg, rt::kSeamTunerProbe,
                              rt::kKnobAutoTune);
}

TEST(FaultMatrix, FusionPassFaultFallsBackToUnfusedPipeline) {
  expect_degraded_but_correct("fusion_pass", EngineConfig{}, rt::kSeamFusionPass,
                              rt::kKnobAdapter);
}

TEST(FaultMatrix, SimLaunchFaultFallsBackToConservativeSchedule) {
  expect_degraded_but_correct("sim_launch", EngineConfig{}, rt::kSeamSimLaunch,
                              rt::kKnobNeighborGrouping);
}

TEST(FaultMatrix, PersistentSimLaunchFaultExhaustsTheLadderCleanly) {
  auto& sink = prof::MetricsSink::instance();
  sink.clear();
  ASSERT_TRUE(rt::FaultInjector::instance().set_plan("sim_launch=*"));
  const GcnFixture f;
  OptimizedEngine e{EngineConfig{}};
  const auto r = e.run_gcn(f.data, {&f.cfg, &f.params, &f.x}, ExecMode::kFull, sim::v100());
  rt::FaultInjector::instance().clear();
  // Every rung tried, then a structured failure — never a crash or throw.
  EXPECT_FALSE(r.status.ok());
  EXPECT_GE(sink.degradation_count(), 2u);
  sink.clear();
}

TEST(FaultMatrix, DatasetLoadFaultIsAStructuredError) {
  ASSERT_TRUE(rt::FaultInjector::instance().set_plan("dataset_load"));
  const auto r = graph::try_make_dataset(graph::DatasetId::kArxiv, 0.02);
  rt::FaultInjector::instance().clear();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), rt::StatusCode::kFaultInjected);
  ASSERT_FALSE(r.status().context().empty());
  EXPECT_NE(r.status().context()[0].find("try_make_dataset"), std::string::npos);
  // The seam is consumed: the next load succeeds.
  EXPECT_TRUE(graph::try_make_dataset(graph::DatasetId::kArxiv, 0.02).ok());
}

TEST(FaultMatrix, MetricsWriteFaultRetriesAndRecordsTheEvent) {
  auto& sink = prof::MetricsSink::instance();
  sink.clear();
  sink.configure("fault_matrix", 1.0);
  ASSERT_TRUE(rt::FaultInjector::instance().set_plan("metrics_write"));
  const std::string path = std::string(::testing::TempDir()) + "/fault_metrics.json";
  const rt::Status s = sink.write_file(path);
  rt::FaultInjector::instance().clear();
  ASSERT_TRUE(s.ok()) << s.to_string();
  EXPECT_EQ(sink.degradation_count(), 1u);
  // The retried write serializes after recording, so the file itself
  // carries the degradation event.
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"knob\":\"metrics_sink\""), std::string::npos);
  EXPECT_NE(buf.str().find("\"action\":\"retry_write\""), std::string::npos);
  std::remove(path.c_str());
  sink.clear();
}

TEST(FaultMatrix, PersistentMetricsWriteFaultSurfacesTheLastError) {
  auto& sink = prof::MetricsSink::instance();
  sink.clear();
  sink.configure("fault_matrix", 1.0);
  ASSERT_TRUE(rt::FaultInjector::instance().set_plan("metrics_write=*"));
  const std::string path = std::string(::testing::TempDir()) + "/never_written.json";
  const rt::Status s = sink.write_file(path);
  rt::FaultInjector::instance().clear();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), rt::StatusCode::kFaultInjected);
  sink.clear();
}

TEST(FaultMatrix, EnginePreflightRejectsCorruptGraph) {
  GcnFixture f;
  f.data.csr.col_idx[0] = f.data.csr.num_nodes + 5;  // out-of-range edge
  OptimizedEngine e{EngineConfig{}};
  const auto r = e.run_gcn(f.data, {&f.cfg, &f.params, &f.x}, ExecMode::kFull, sim::v100());
  EXPECT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), rt::StatusCode::kFailedPrecondition);
}

TEST(FaultMatrix, EnginePreflightRejectsNaNFeatures) {
  GcnFixture f;
  f.x(0, 0) = std::numeric_limits<float>::quiet_NaN();
  OptimizedEngine e{EngineConfig{}};
  const auto r = e.run_gcn(f.data, {&f.cfg, &f.params, &f.x}, ExecMode::kFull, sim::v100());
  EXPECT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), rt::StatusCode::kFailedPrecondition);
  EXPECT_NE(r.status.to_string().find("features"), std::string::npos);
}

}  // namespace
}  // namespace gnnbridge
