// Unit tests for the host threading model (src/par/thread_pool.hpp):
// the pool runs every task exactly once, exceptions surface like a
// sequential loop, nested regions run inline, and — the load-bearing
// contract — chunked reductions are byte-identical at any thread count.
#include "par/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace gnnbridge::par {
namespace {

// Restores the process-wide thread override after each test so the suite
// order never leaks a parallelism setting.
class ThreadPoolTest : public ::testing::Test {
 protected:
  void TearDown() override { set_max_threads(0); }
};

TEST_F(ThreadPoolTest, MaxThreadsIsAtLeastOneAndOverridable) {
  EXPECT_GE(max_threads(), 1);
  set_max_threads(3);
  EXPECT_EQ(max_threads(), 3);
  set_max_threads(0);  // reset to environment/hardware default
  EXPECT_GE(max_threads(), 1);
}

TEST_F(ThreadPoolTest, RunTasksRunsEveryTaskExactlyOnce) {
  set_max_threads(8);
  constexpr std::size_t kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  ThreadPool::instance().run_tasks(kTasks, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST_F(ThreadPoolTest, ParallelChunksCoversRangeWithFixedBoundaries) {
  set_max_threads(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_chunks(kN, 64, [&](std::size_t c, std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, c * 64);
    EXPECT_EQ(end, std::min<std::size_t>(kN, begin + 64));
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

// The determinism contract: a floating-point reduction folded from
// per-chunk shards in chunk order yields the same bits at 1, 2 and 8
// threads. The per-item values are chosen to make naive out-of-order
// summation visibly different (mix of large and tiny magnitudes).
TEST_F(ThreadPoolTest, ShardedReductionIsByteIdenticalAcrossThreadCounts) {
  constexpr std::size_t kN = 10000;
  std::vector<double> values(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    values[i] = (i % 7 == 0) ? 1.0e12 : 1.0 / static_cast<double>(i + 1);
  }
  auto reduce = [&]() {
    std::vector<double> shards = sharded_chunks<double>(
        kN, 128, [&](double& shard, std::size_t, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) shard += values[i];
        });
    double total = 0.0;
    for (double s : shards) total += s;
    return total;
  };
  set_max_threads(1);
  const double serial = reduce();
  for (int threads : {2, 8}) {
    set_max_threads(threads);
    for (int rep = 0; rep < 5; ++rep) {
      EXPECT_EQ(reduce(), serial) << threads << " threads, rep " << rep;
    }
  }
}

TEST_F(ThreadPoolTest, ExceptionFromLowestTaskIndexIsRethrown) {
  set_max_threads(8);
  try {
    ThreadPool::instance().run_tasks(100, [&](std::size_t i) {
      if (i == 17 || i == 63) {
        throw std::runtime_error("task " + std::to_string(i));
      }
    });
    FAIL() << "expected run_tasks to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 17");
  }
}

TEST_F(ThreadPoolTest, PoolStaysUsableAfterAThrowingRegion) {
  set_max_threads(4);
  EXPECT_THROW(ThreadPool::instance().run_tasks(
                   10, [](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  std::atomic<int> count{0};
  ThreadPool::instance().run_tasks(10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST_F(ThreadPoolTest, NestedRegionsRunInlineWithoutDeadlock) {
  set_max_threads(4);
  EXPECT_FALSE(in_parallel_region());
  std::atomic<std::int64_t> total{0};
  parallel_chunks(512, 64, [&](std::size_t, std::size_t begin, std::size_t end) {
    EXPECT_TRUE(in_parallel_region());
    // Nested region: must execute inline on this worker.
    parallel_chunks(end - begin, 16, [&](std::size_t, std::size_t b, std::size_t e) {
      total.fetch_add(static_cast<std::int64_t>(e - b), std::memory_order_relaxed);
    });
  });
  EXPECT_FALSE(in_parallel_region());
  EXPECT_EQ(total.load(), 512);
}

TEST_F(ThreadPoolTest, AlignedChunkBoundsNeverSplitJoinedRuns) {
  // Items belong together in runs of 10: joined(i) == (i % 10 != 0).
  const std::size_t n = 1005;
  auto joined = [](std::size_t i) { return i % 10 != 0; };
  const std::vector<std::size_t> bounds = aligned_chunk_bounds(n, 64, joined);
  ASSERT_GE(bounds.size(), 2u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), n);
  for (std::size_t c = 1; c + 1 < bounds.size(); ++c) {
    EXPECT_GT(bounds[c], bounds[c - 1]);
    EXPECT_FALSE(joined(bounds[c])) << "boundary " << bounds[c] << " splits a run";
  }
  // Deterministic: same inputs, same bounds.
  EXPECT_EQ(aligned_chunk_bounds(n, 64, joined), bounds);
}

TEST_F(ThreadPoolTest, ParallelRangesVisitsEachRangeOnce) {
  set_max_threads(4);
  const std::vector<std::size_t> bounds = {0, 100, 350, 351, 1000};
  std::vector<std::atomic<int>> hits(1000);
  parallel_ranges(bounds, [&](std::size_t c, std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, bounds[c]);
    EXPECT_EQ(end, bounds[c + 1]);
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < 1000; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST_F(ThreadPoolTest, EmptyAndSingleChunkRegionsRunInline) {
  set_max_threads(8);
  int calls = 0;
  parallel_chunks(0, 64, [&](std::size_t, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_chunks(10, 64, [&](std::size_t c, std::size_t begin, std::size_t end) {
    ++calls;
    EXPECT_EQ(c, 0u);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
  });
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace gnnbridge::par
