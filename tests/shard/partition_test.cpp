// The deterministic edge-cut partitioner (DESIGN.md §16): shard
// construction edge cases, ghost routing tables, byte-stability, and the
// checked-accessor error path for corrupt graphs.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "shard/partition.hpp"
#include "tests/testing/util.hpp"

namespace gnnbridge {
namespace {

using graph::Csr;
using graph::EdgeId;
using graph::NodeId;
using shard::Partition;
using shard::PartitionConfig;
using shard::partition_graph;

Partition must_partition(const Csr& g, int k) {
  PartitionConfig cfg;
  cfg.shards = k;
  rt::Result<Partition> p = partition_graph(g, cfg);
  EXPECT_TRUE(p.ok()) << p.status().to_string();
  return *std::move(p);
}

/// Structural invariants every partition must satisfy, whatever the graph:
/// owned sets partition the node set, ghost tables route to real owned
/// rows, local CSRs preserve the global within-row neighbor order.
void check_invariants(const Csr& g, const Partition& p) {
  ASSERT_EQ(p.shards.size(), static_cast<std::size_t>(p.k));
  ASSERT_EQ(p.assign.size(), static_cast<std::size_t>(g.num_nodes));
  std::vector<int> seen(static_cast<std::size_t>(g.num_nodes), 0);
  NodeId total_owned = 0;
  NodeId total_ghosts = 0;
  EdgeId total_edges = 0;
  for (std::size_t s = 0; s < p.shards.size(); ++s) {
    const shard::Shard& sh = p.shards[s];
    if (g.num_nodes > 0) EXPECT_FALSE(sh.owned.empty()) << "empty shard " << s;
    EXPECT_TRUE(graph::valid(sh.local)) << "invalid local CSR, shard " << s;
    EXPECT_EQ(sh.local.num_nodes, sh.num_owned() + static_cast<NodeId>(sh.ghosts.size()));
    EXPECT_EQ(sh.ghost_owner.size(), sh.ghosts.size());
    EXPECT_EQ(sh.ghost_owner_row.size(), sh.ghosts.size());
    total_owned += sh.num_owned();
    total_ghosts += static_cast<NodeId>(sh.ghosts.size());
    total_edges += sh.local.num_edges();
    for (std::size_t r = 0; r < sh.owned.size(); ++r) {
      const NodeId v = sh.owned[r];
      seen[static_cast<std::size_t>(v)]++;
      EXPECT_EQ(p.assign[static_cast<std::size_t>(v)], static_cast<int>(s));
      if (r > 0) EXPECT_LT(sh.owned[r - 1], v) << "owned not ascending";
      // The local row must mirror the global row: same length, same
      // within-row order, every local column resolving to the same global
      // source id.
      const auto global_nbrs = g.neighbors(v);
      const auto local_nbrs = sh.local.neighbors(static_cast<NodeId>(r));
      ASSERT_EQ(local_nbrs.size(), global_nbrs.size()) << "row " << v;
      for (std::size_t i = 0; i < local_nbrs.size(); ++i) {
        const NodeId lc = local_nbrs[i];
        const NodeId global_src =
            lc < sh.num_owned() ? sh.owned[static_cast<std::size_t>(lc)]
                                : sh.ghosts[static_cast<std::size_t>(lc - sh.num_owned())];
        EXPECT_EQ(global_src, global_nbrs[i]) << "row " << v << " slot " << i;
      }
    }
    for (std::size_t gi = 0; gi < sh.ghosts.size(); ++gi) {
      if (gi > 0) EXPECT_LT(sh.ghosts[gi - 1], sh.ghosts[gi]) << "ghosts not ascending";
      const int owner = sh.ghost_owner[gi];
      ASSERT_GE(owner, 0);
      ASSERT_LT(owner, p.k);
      EXPECT_NE(owner, static_cast<int>(s)) << "ghost owned by its own shard";
      const shard::Shard& osh = p.shards[static_cast<std::size_t>(owner)];
      const NodeId row = sh.ghost_owner_row[gi];
      ASSERT_GE(row, 0);
      ASSERT_LT(row, osh.num_owned());
      EXPECT_EQ(osh.owned[static_cast<std::size_t>(row)], sh.ghosts[gi])
          << "ghost routing points at the wrong owned row";
      // Ghost rows carry no edges: ghosts are read, never aggregated.
      EXPECT_EQ(sh.local.degree(sh.num_owned() + static_cast<NodeId>(gi)), 0);
    }
  }
  EXPECT_EQ(total_owned, g.num_nodes);
  EXPECT_EQ(total_ghosts, p.total_ghosts);
  EXPECT_EQ(total_edges, g.num_edges()) << "local CSRs must cover every global edge";
  for (const int c : seen) EXPECT_EQ(c, 1) << "owned sets must partition the node set";
}

TEST(ShardPartition, KEqualsOneIsTheIdentity) {
  const Csr g = testing::random_graph(200, 5.0, 42);
  const Partition p = must_partition(g, 1);
  EXPECT_EQ(p.k, 1);
  EXPECT_EQ(p.cut_edges, 0);
  EXPECT_EQ(p.total_ghosts, 0);
  ASSERT_EQ(p.shards.size(), 1u);
  const shard::Shard& sh = p.shards[0];
  EXPECT_TRUE(sh.ghosts.empty());
  // One shard owning everything: the local CSR *is* the input.
  EXPECT_EQ(sh.local.num_nodes, g.num_nodes);
  EXPECT_EQ(sh.local.row_ptr, g.row_ptr);
  EXPECT_EQ(sh.local.col_idx, g.col_idx);
  check_invariants(g, p);
}

TEST(ShardPartition, KLargerThanNodeCountClampsToOneNodePerShard) {
  const Csr g = testing::path_graph(6);
  const Partition p = must_partition(g, 64);
  EXPECT_EQ(p.k, 6);
  ASSERT_EQ(p.shards.size(), 6u);
  for (const shard::Shard& sh : p.shards) EXPECT_EQ(sh.num_owned(), 1);
  check_invariants(g, p);
}

TEST(ShardPartition, ShardWithZeroInternalEdges) {
  // One node per shard on a cycle: every edge crosses shards, so every
  // shard aggregates exclusively from ghosts (zero internal edges).
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v < 8; ++v) edges.push_back({v, (v + 1) % 8});
  const Csr g = testing::csr_from_edges(8, std::move(edges));
  const Partition p = must_partition(g, 8);
  EXPECT_EQ(p.k, 8);
  EXPECT_EQ(p.cut_edges, g.num_edges());
  for (const shard::Shard& sh : p.shards) {
    EXPECT_EQ(sh.ghosts.size(), 1u);
    // The owned row still has its full (remote-sourced) neighbor list.
    EXPECT_EQ(sh.local.degree(0), 1);
  }
  check_invariants(g, p);
}

TEST(ShardPartition, GhostReferencedByEveryShard) {
  // Every center aggregates node 0: whichever shard owns node 0, all
  // others must carry it as a ghost with consistent routing.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 1; v < 40; ++v) edges.push_back({v, 0});
  const Csr g = testing::csr_from_edges(40, std::move(edges));
  const Partition p = must_partition(g, 4);
  EXPECT_EQ(p.k, 4);
  const int owner = p.assign[0];
  int shards_with_ghost0 = 0;
  for (std::size_t s = 0; s < p.shards.size(); ++s) {
    const shard::Shard& sh = p.shards[s];
    const bool has_ghost0 = !sh.ghosts.empty() && sh.ghosts.front() == 0;
    if (static_cast<int>(s) == owner) {
      EXPECT_FALSE(has_ghost0);
    } else if (has_ghost0) {
      shards_with_ghost0++;
      EXPECT_EQ(sh.ghost_owner.front(), owner);
    }
  }
  EXPECT_EQ(shards_with_ghost0, 3) << "node 0 must be a ghost in every non-owning shard";
  check_invariants(g, p);
}

TEST(ShardPartition, InvariantsOnSkewedGraph) {
  const Csr g = testing::random_graph(3000, 8.0, 7);
  for (const int k : {2, 3, 8}) {
    const Partition p = must_partition(g, k);
    EXPECT_EQ(p.k, k);
    check_invariants(g, p);
  }
}

TEST(ShardPartition, ByteStableAcrossRuns) {
  const Csr g = testing::random_graph(2000, 6.0, 11);
  const Partition a = must_partition(g, 4);
  const Partition b = must_partition(g, 4);
  EXPECT_EQ(a.assign, b.assign);
  EXPECT_EQ(a.cut_edges, b.cut_edges);
  EXPECT_EQ(a.total_ghosts, b.total_ghosts);
  for (int s = 0; s < 4; ++s) {
    const auto& sa = a.shards[static_cast<std::size_t>(s)];
    const auto& sb = b.shards[static_cast<std::size_t>(s)];
    EXPECT_EQ(sa.owned, sb.owned);
    EXPECT_EQ(sa.ghosts, sb.ghosts);
    EXPECT_EQ(sa.local.row_ptr, sb.local.row_ptr);
    EXPECT_EQ(sa.local.col_idx, sb.local.col_idx);
    EXPECT_EQ(sa.edge_origin, sb.edge_origin);
  }
  // A different seed is allowed to (and on this graph does) produce a
  // different refinement — the seed is part of the function's identity.
  PartitionConfig other;
  other.shards = 4;
  other.seed = 1234567;
  const rt::Result<Partition> c = partition_graph(g, other);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->k, 4);
}

// Regression (checked CSR accessors): a corrupt graph — out-of-range
// column / truncated row_ptr — must surface as a structured Status from
// partition_graph, not an assert or out-of-range read. The partitioner
// reads rows exclusively through rt::checked_neighbors.
TEST(ShardPartition, CorruptGraphReportsStructuredError) {
  Csr bad = testing::path_graph(8);
  bad.col_idx[0] = 99;  // source id beyond num_nodes
  PartitionConfig cfg;
  cfg.shards = 2;
  const rt::Result<Partition> r1 = partition_graph(bad, cfg);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), rt::StatusCode::kFailedPrecondition)
      << r1.status().to_string();

  Csr truncated = testing::path_graph(8);
  truncated.row_ptr.pop_back();  // num_nodes + 1 invariant broken
  const rt::Result<Partition> r2 = partition_graph(truncated, cfg);
  ASSERT_FALSE(r2.ok());
  EXPECT_FALSE(r2.status().to_string().empty());

  Csr negative = testing::path_graph(8);
  negative.row_ptr[1] = -3;  // non-monotone row bounds
  const rt::Result<Partition> r3 = partition_graph(negative, cfg);
  ASSERT_FALSE(r3.ok());
}

TEST(ShardPartition, EmptyAndTinyGraphs) {
  Csr empty;  // zero nodes, structurally valid (row_ptr = {0})
  empty.row_ptr = {0};
  const Partition p0 = must_partition(empty, 4);
  EXPECT_EQ(p0.k, 1);
  EXPECT_EQ(p0.total_ghosts, 0);

  const Csr one = testing::path_graph(1);
  const Partition p1 = must_partition(one, 4);
  EXPECT_EQ(p1.k, 1);
  ASSERT_EQ(p1.shards.size(), 1u);
  EXPECT_EQ(p1.shards[0].num_owned(), 1);
}

}  // namespace
}  // namespace gnnbridge
