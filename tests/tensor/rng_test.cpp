#include "tensor/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gnnbridge::tensor {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DiffersAcrossSeeds) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-3.0f, 5.0f);
    EXPECT_GE(v, -3.0f);
    EXPECT_LT(v, 5.0f);
  }
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(7), 7u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(19);
  std::array<int, 5> counts{};
  for (int i = 0; i < 5000; ++i) counts[rng.below(5)]++;
  for (int c : counts) EXPECT_GT(c, 800);
}

TEST(Rng, NormalMomentsMatchStandard) {
  Rng rng(23);
  double sum = 0.0, sumsq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sumsq / kN, 1.0, 0.03);
}

TEST(Splitmix, AdvancesState) {
  std::uint64_t s = 1;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(FillGlorot, BoundsMatchFanInOut) {
  Rng rng(29);
  Matrix m(10, 30);
  fill_glorot(m, rng);
  const float bound = std::sqrt(6.0f / (10 + 30));
  for (Index i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::fabs(m.data()[i]), bound);
  }
}

TEST(FillUniform, Deterministic) {
  Rng a(5), b(5);
  Matrix m1(4, 4), m2(4, 4);
  fill_uniform(m1, a);
  fill_uniform(m2, b);
  EXPECT_EQ(m1, m2);
}

}  // namespace
}  // namespace gnnbridge::tensor
