#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include "tensor/rng.hpp"

namespace gnnbridge::tensor {
namespace {

Matrix random(Index r, Index c, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(r, c);
  fill_uniform(m, rng);
  return m;
}

TEST(GemmRef, TinyHandComputed) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 2, {5, 6, 7, 8});
  Matrix c = gemm_ref(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 50.0f);
}

TEST(Gemm, IdentityIsNoop) {
  Matrix a = random(5, 5, 1);
  Matrix eye(5, 5);
  for (Index i = 0; i < 5; ++i) eye(i, i) = 1.0f;
  EXPECT_TRUE(allclose(gemm(a, eye), a));
}

/// Blocked GEMM must match the reference for shapes around the 64-tile
/// boundary — the classic off-by-one territory.
class GemmShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, BlockedMatchesReference) {
  auto [m, k, n] = GetParam();
  Matrix a = random(m, k, 10 + m);
  Matrix b = random(k, n, 20 + n);
  EXPECT_TRUE(allclose(gemm(a, b), gemm_ref(a, b), 1e-3f, 1e-4f))
      << "m=" << m << " k=" << k << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(TileBoundaries, GemmShapes,
                         ::testing::Values(std::tuple{1, 1, 1}, std::tuple{63, 64, 65},
                                           std::tuple{64, 64, 64}, std::tuple{65, 63, 64},
                                           std::tuple{128, 32, 16}, std::tuple{7, 129, 5},
                                           std::tuple{100, 100, 100}, std::tuple{1, 200, 3}));

TEST(GemmNt, MatchesExplicitTranspose) {
  Matrix a = random(13, 7, 3);
  Matrix b = random(11, 7, 4);
  EXPECT_TRUE(allclose(gemm_nt(a, b), gemm_ref(a, transpose(b)), 1e-3f, 1e-4f));
}

TEST(Transpose, Involution) {
  Matrix a = random(9, 17, 5);
  EXPECT_EQ(transpose(transpose(a)), a);
}

TEST(AddSubMul, Elementwise) {
  Matrix a(1, 3, {1, 2, 3});
  Matrix b(1, 3, {4, 5, 6});
  EXPECT_EQ(add(a, b), Matrix(1, 3, {5, 7, 9}));
  EXPECT_EQ(sub(b, a), Matrix(1, 3, {3, 3, 3}));
  EXPECT_EQ(mul(a, b), Matrix(1, 3, {4, 10, 18}));
}

TEST(Axpy, AccumulatesScaled) {
  Matrix a(1, 2, {1, 1});
  Matrix b(1, 2, {2, 4});
  axpy(a, 0.5f, b);
  EXPECT_EQ(a, Matrix(1, 2, {2, 3}));
}

TEST(Scale, MultipliesAll) {
  Matrix a(1, 3, {1, -2, 3});
  scale(a, -2.0f);
  EXPECT_EQ(a, Matrix(1, 3, {-2, 4, -6}));
}

TEST(AddBias, PerColumn) {
  Matrix m(2, 2, {0, 0, 1, 1});
  const std::vector<float> bias{10, 20};
  add_bias(m, bias);
  EXPECT_EQ(m, Matrix(2, 2, {10, 20, 11, 21}));
}

TEST(ScaleRows, PerRowFactors) {
  Matrix m(2, 2, {1, 1, 1, 1});
  const std::vector<float> f{2, 3};
  scale_rows(m, f);
  EXPECT_EQ(m, Matrix(2, 2, {2, 2, 3, 3}));
}

TEST(RowSum, SumsEachRow) {
  Matrix m(2, 3, {1, 2, 3, -1, -2, -3});
  Matrix s = row_sum(m);
  EXPECT_FLOAT_EQ(s(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(s(1, 0), -6.0f);
}

TEST(RowMax, FindsMaxPerRow) {
  Matrix m(2, 3, {1, 9, 3, -5, -2, -7});
  Matrix s = row_max(m);
  EXPECT_FLOAT_EQ(s(0, 0), 9.0f);
  EXPECT_FLOAT_EQ(s(1, 0), -2.0f);
}

TEST(Dot, MatchesManual) {
  const std::vector<float> a{1, 2, 3};
  const std::vector<float> b{4, 5, 6};
  EXPECT_FLOAT_EQ(dot(a, b), 32.0f);
}

TEST(FrobeniusNorm, KnownValue) {
  Matrix m(1, 2, {3, 4});
  EXPECT_FLOAT_EQ(frobenius_norm(m), 5.0f);
}

}  // namespace
}  // namespace gnnbridge::tensor
