#include "tensor/activations.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gnnbridge::tensor {
namespace {

TEST(Relu, ClampsNegatives) {
  Matrix m(1, 4, {-2, -0.5f, 0, 3});
  relu_(m);
  EXPECT_EQ(m, Matrix(1, 4, {0, 0, 0, 3}));
}

TEST(LeakyRelu, ScalesNegatives) {
  Matrix m(1, 3, {-1, 0, 2});
  leaky_relu_(m, 0.2f);
  EXPECT_FLOAT_EQ(m(0, 0), -0.2f);
  EXPECT_FLOAT_EQ(m(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(m(0, 2), 2.0f);
}

TEST(LeakyReluScalar, MatchesMatrixVersion) {
  EXPECT_FLOAT_EQ(leaky_relu_scalar(-2.0f, 0.1f), -0.2f);
  EXPECT_FLOAT_EQ(leaky_relu_scalar(5.0f, 0.1f), 5.0f);
}

TEST(Tanh, MatchesStd) {
  Matrix m(1, 3, {-1, 0, 1});
  tanh_(m);
  EXPECT_FLOAT_EQ(m(0, 0), std::tanh(-1.0f));
  EXPECT_FLOAT_EQ(m(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(m(0, 2), std::tanh(1.0f));
}

TEST(Sigmoid, SymmetricAroundHalf) {
  Matrix m(1, 2, {-3, 3});
  sigmoid_(m);
  EXPECT_NEAR(m(0, 0) + m(0, 1), 1.0f, 1e-6f);
  EXPECT_LT(m(0, 0), 0.5f);
}

TEST(Exp, Elementwise) {
  Matrix m(1, 2, {0, 1});
  exp_(m);
  EXPECT_FLOAT_EQ(m(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m(0, 1), std::exp(1.0f));
}

TEST(CopyingVariants, LeaveInputUntouched) {
  const Matrix m(1, 2, {-1, 1});
  const Matrix r = relu(m);
  const Matrix l = leaky_relu(m);
  const Matrix t = tanh_of(m);
  const Matrix s = sigmoid(m);
  EXPECT_EQ(m, Matrix(1, 2, {-1, 1}));
  EXPECT_FLOAT_EQ(r(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(l(0, 0), -0.2f);
  EXPECT_FLOAT_EQ(t(0, 1), std::tanh(1.0f));
  EXPECT_GT(s(0, 1), 0.5f);
}

TEST(SoftmaxRows, RowsSumToOne) {
  Matrix m(2, 3, {1, 2, 3, -1, 0, 1});
  Matrix s = softmax_rows(m);
  for (Index r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (Index c = 0; c < 3; ++c) sum += s(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
  }
}

TEST(SoftmaxRows, StableForLargeInputs) {
  Matrix m(1, 2, {1000.0f, 1001.0f});
  Matrix s = softmax_rows(m);
  EXPECT_FALSE(std::isnan(s(0, 0)));
  EXPECT_NEAR(s(0, 0) + s(0, 1), 1.0f, 1e-6f);
  EXPECT_GT(s(0, 1), s(0, 0));
}

TEST(SoftmaxRows, OrderPreserving) {
  Matrix m(1, 3, {0.1f, 0.3f, 0.2f});
  Matrix s = softmax_rows(m);
  EXPECT_GT(s(0, 1), s(0, 2));
  EXPECT_GT(s(0, 2), s(0, 0));
}

}  // namespace
}  // namespace gnnbridge::tensor
