#include "tensor/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gnnbridge::tensor {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ConstructedZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12);
  for (Index r = 0; r < 3; ++r) {
    for (Index c = 0; c < 4; ++c) EXPECT_EQ(m(r, c), 0.0f);
  }
}

TEST(Matrix, ElementAccessRoundTrips) {
  Matrix m(2, 3);
  m(0, 0) = 1.5f;
  m(1, 2) = -2.0f;
  EXPECT_EQ(m(0, 0), 1.5f);
  EXPECT_EQ(m(1, 2), -2.0f);
}

TEST(Matrix, RowSpanIsContiguousRowMajor) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  auto r1 = m.row(1);
  ASSERT_EQ(r1.size(), 3u);
  EXPECT_EQ(r1[0], 4.0f);
  EXPECT_EQ(r1[2], 6.0f);
  r1[1] = 50.0f;
  EXPECT_EQ(m(1, 1), 50.0f);
}

TEST(Matrix, FillSetsAll) {
  Matrix m(4, 4);
  m.fill(3.25f);
  EXPECT_EQ(m(3, 3), 3.25f);
  EXPECT_EQ(m(0, 0), 3.25f);
}

TEST(Matrix, ResetReshapesAndZeroes) {
  Matrix m(2, 2);
  m.fill(1.0f);
  m.reset(3, 5);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 5);
  EXPECT_EQ(m(2, 4), 0.0f);
}

TEST(Matrix, EqualityIsDeep) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(a, b);
  b(0, 0) = 9.0f;
  EXPECT_NE(a, b);
}

TEST(MaxAbsDiff, ZeroForIdentical) {
  Matrix a(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(max_abs_diff(a, a), 0.0f);
}

TEST(MaxAbsDiff, FindsWorstElement) {
  Matrix a(1, 3, {1, 2, 3});
  Matrix b(1, 3, {1, 2.5f, 2});
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 1.0f);
}

TEST(MaxAbsDiff, InfiniteOnShapeMismatch) {
  Matrix a(1, 2);
  Matrix b(2, 1);
  EXPECT_TRUE(std::isinf(max_abs_diff(a, b)));
}

TEST(Allclose, ToleratesRelativeError) {
  Matrix a(1, 1, {1000.0f});
  Matrix b(1, 1, {1000.05f});
  EXPECT_TRUE(allclose(a, b));
}

TEST(Allclose, RejectsLargeError) {
  Matrix a(1, 1, {1.0f});
  Matrix b(1, 1, {1.1f});
  EXPECT_FALSE(allclose(a, b));
}

TEST(Allclose, RejectsShapeMismatch) {
  EXPECT_FALSE(allclose(Matrix(1, 2), Matrix(2, 1)));
}

}  // namespace
}  // namespace gnnbridge::tensor
