#include "models/lstm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"
#include "tests/testing/util.hpp"

namespace gnnbridge::models {
namespace {

SageLstmParams tiny_params(Index in, Index hidden, std::uint64_t seed) {
  SageLstmConfig cfg;
  cfg.in_feat = in;
  cfg.hidden = hidden;
  return init_sage_lstm(cfg, seed);
}

TEST(LstmRef, ZeroStateIsZero) {
  const LstmState s = zero_state(4, 8);
  EXPECT_EQ(tensor::frobenius_norm(s.h), 0.0f);
  EXPECT_EQ(tensor::frobenius_norm(s.c), 0.0f);
}

TEST(LstmRef, CellUpdatesState) {
  const SageLstmParams p = tiny_params(6, 4, 1);
  LstmState s = zero_state(3, 4);
  const Matrix x = testing::random_matrix(3, 6, 2);
  lstm_cell_ref(x, p, s);
  EXPECT_GT(tensor::frobenius_norm(s.h), 0.0f);
  EXPECT_GT(tensor::frobenius_norm(s.c), 0.0f);
}

TEST(LstmRef, HiddenBoundedByOne) {
  const SageLstmParams p = tiny_params(5, 7, 3);
  LstmState s = zero_state(10, 7);
  const Matrix x = testing::random_matrix(10, 5, 4, -3.0f, 3.0f);
  for (int t = 0; t < 20; ++t) lstm_cell_ref(x, p, s);
  for (Index i = 0; i < s.h.size(); ++i) EXPECT_LT(std::fabs(s.h.data()[i]), 1.0f);
}

TEST(LstmRef, ForgetGateZeroKillsMemory) {
  // Gates order i,f,z,o: a huge negative f-gate pre-activation makes
  // f ~ 0 and the new cell state ignores the old one.
  const Index hidden = 3;
  Matrix gates(1, 4 * hidden);
  for (Index j = 0; j < hidden; ++j) {
    gates(0, j) = 10.0f;               // i ~ 1
    gates(0, hidden + j) = -50.0f;     // f ~ 0
    gates(0, 2 * hidden + j) = 0.5f;   // z = tanh(0.5)
    gates(0, 3 * hidden + j) = 10.0f;  // o ~ 1
  }
  LstmState s = zero_state(1, hidden);
  s.c.fill(100.0f);  // should be forgotten
  lstm_apply_gates(gates, s);
  for (Index j = 0; j < hidden; ++j) {
    EXPECT_NEAR(s.c(0, j), std::tanh(0.5f), 1e-4f);
  }
}

TEST(LstmRef, InputGateZeroPreservesCell) {
  const Index hidden = 2;
  Matrix gates(1, 4 * hidden);
  for (Index j = 0; j < hidden; ++j) {
    gates(0, j) = -50.0f;             // i ~ 0
    gates(0, hidden + j) = 50.0f;     // f ~ 1
    gates(0, 2 * hidden + j) = 0.9f;  // z irrelevant
    gates(0, 3 * hidden + j) = 50.0f; // o ~ 1
  }
  LstmState s = zero_state(1, hidden);
  s.c(0, 0) = 0.3f;
  s.c(0, 1) = -0.2f;
  lstm_apply_gates(gates, s);
  EXPECT_NEAR(s.c(0, 0), 0.3f, 1e-4f);
  EXPECT_NEAR(s.c(0, 1), -0.2f, 1e-4f);
  EXPECT_NEAR(s.h(0, 0), std::tanh(0.3f), 1e-4f);
}

TEST(LstmRef, CellMatchesManualGateComposition) {
  const SageLstmParams p = tiny_params(4, 5, 5);
  const Matrix x = testing::random_matrix(2, 4, 6);
  LstmState s = zero_state(2, 5);
  s.c = testing::random_matrix(2, 5, 7, -0.5f, 0.5f);
  s.h = testing::random_matrix(2, 5, 8, -0.5f, 0.5f);
  const LstmState before = s;

  // Manual: gates = xW + hR + b, then shared gate math.
  Matrix gates = tensor::gemm(x, p.w);
  tensor::axpy(gates, 1.0f, tensor::gemm(before.h, p.r));
  for (Index n = 0; n < 2; ++n) {
    for (Index j = 0; j < 20; ++j) gates(n, j) += p.bias(j, 0);
  }
  LstmState manual = before;
  lstm_apply_gates(gates, manual);

  lstm_cell_ref(x, p, s);
  EXPECT_TRUE(tensor::allclose(s.h, manual.h, 1e-5f, 1e-6f));
  EXPECT_TRUE(tensor::allclose(s.c, manual.c, 1e-5f, 1e-6f));
}

}  // namespace
}  // namespace gnnbridge::models
