#include "models/layers.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/activations.hpp"
#include "tensor/ops.hpp"
#include "tests/testing/util.hpp"

namespace gnnbridge::models {
namespace {

using testing::random_graph;
using testing::random_matrix;

struct LayerFixture : public ::testing::Test {
  Csr g = random_graph(30, 4.0, 1);
  Matrix h = random_matrix(30, 6, 2);
  std::vector<float> ones = edge_const(g);
};

TEST_F(LayerFixture, SumLayerHandComputable) {
  const Csr tiny = testing::csr_from_edges(3, {{0, 1}, {0, 2}});
  Matrix feat(3, 2, {0, 0, 1, 2, 3, 4});
  const std::vector<float> w{1.0f, 1.0f};
  const Matrix out = layer_sum(tiny, feat, w);
  EXPECT_FLOAT_EQ(out(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(out(0, 1), 6.0f);
  EXPECT_FLOAT_EQ(out(1, 0), 0.0f);
}

TEST_F(LayerFixture, MeanIsSumOverDegree) {
  const Matrix sum = layer_sum(g, h, ones);
  const Matrix mean = layer_mean(g, h, ones);
  for (NodeId v = 0; v < g.num_nodes; ++v) {
    const EdgeId d = g.degree(v);
    for (Index f = 0; f < h.cols(); ++f) {
      if (d > 0) {
        EXPECT_NEAR(mean(v, f), sum(v, f) / static_cast<float>(d), 1e-5f);
      } else {
        EXPECT_EQ(mean(v, f), 0.0f);
      }
    }
  }
}

TEST_F(LayerFixture, PoolingIsMaxOfTransformed) {
  Matrix w = random_matrix(6, 4, 3);
  const Matrix out = layer_pooling(g, h, w, ones);
  const Matrix transformed = tensor::relu(tensor::gemm(h, w));
  for (NodeId v = 0; v < g.num_nodes; ++v) {
    for (Index f = 0; f < 4; ++f) {
      float mx = g.degree(v) == 0 ? 0.0f : -1e30f;
      for (NodeId u : g.neighbors(v)) mx = std::max(mx, transformed(u, f));
      EXPECT_NEAR(out(v, f), mx, 1e-5f);
    }
  }
}

TEST_F(LayerFixture, MlpLayerShapeAndSemantics) {
  Matrix w1 = random_matrix(6, 8, 4);
  Matrix w2 = random_matrix(8, 3, 5);
  const Matrix out = layer_mlp(g, h, w1, w2, ones);
  EXPECT_EQ(out.rows(), 30);
  EXPECT_EQ(out.cols(), 3);
  const Matrix expect =
      tensor::gemm(tensor::relu(tensor::gemm(layer_sum(g, h, ones), w1)), w2);
  EXPECT_TRUE(tensor::allclose(out, expect, 1e-4f, 1e-5f));
}

TEST_F(LayerFixture, SoftmaxAggrWeightsSumToOnePerCenter) {
  // With all-equal edge weights softmax degenerates to mean.
  const Matrix aggr = layer_softmax_aggr(g, h, ones);
  const Matrix mean = layer_mean(g, h, ones);
  EXPECT_TRUE(tensor::allclose(aggr, mean, 1e-4f, 1e-5f));
}

TEST(EdgeOps, ConstIsAllOnes) {
  const Csr g = random_graph(10, 3.0, 6);
  for (float v : edge_const(g)) EXPECT_EQ(v, 1.0f);
}

TEST(EdgeOps, GcnNormSymmetric) {
  // Symmetric graph: e_uv == e_vu.
  tensor::Rng rng(7);
  const Csr g = graph::csr_from_coo(graph::erdos_renyi(40, 6.0, rng));
  const auto norm = edge_gcn(g);
  for (NodeId v = 0; v < g.num_nodes; ++v) {
    for (EdgeId i = g.row_ptr[v]; i < g.row_ptr[static_cast<std::size_t>(v) + 1]; ++i) {
      const NodeId u = g.col_idx[static_cast<std::size_t>(i)];
      const float expect = 1.0f / std::sqrt(static_cast<float>((g.degree(u) + 1)) *
                                            static_cast<float>(g.degree(v) + 1));
      EXPECT_NEAR(norm[static_cast<std::size_t>(i)], expect, 1e-6f);
    }
  }
}

TEST(EdgeOps, GatMatchesFactorizedForm) {
  const Csr g = random_graph(20, 4.0, 8);
  Matrix feat = random_matrix(20, 5, 9);
  Matrix al = random_matrix(5, 1, 10);
  Matrix ar = random_matrix(5, 1, 11);
  const auto e = edge_gat(g, feat, al, ar);
  for (NodeId v = 0; v < g.num_nodes; ++v) {
    for (EdgeId i = g.row_ptr[v]; i < g.row_ptr[static_cast<std::size_t>(v) + 1]; ++i) {
      const NodeId u = g.col_idx[static_cast<std::size_t>(i)];
      float su = 0.0f, sv = 0.0f;
      for (Index f = 0; f < 5; ++f) {
        su += feat(u, f) * al(f, 0);
        sv += feat(v, f) * ar(f, 0);
      }
      const float raw = su + sv;
      EXPECT_NEAR(e[static_cast<std::size_t>(i)], raw >= 0 ? raw : 0.2f * raw, 1e-5f);
    }
  }
}

TEST(EdgeOps, SymGatAddsReverse) {
  tensor::Rng rng(12);
  const Csr g = graph::csr_from_coo(graph::erdos_renyi(25, 4.0, rng));  // symmetric
  Matrix feat = random_matrix(25, 4, 13);
  Matrix al = random_matrix(4, 1, 14);
  Matrix ar = random_matrix(4, 1, 15);
  const auto fwd = edge_gat(g, feat, al, ar);
  const auto sym = edge_sym_gat(g, feat, al, ar);
  for (NodeId v = 0; v < g.num_nodes; ++v) {
    for (EdgeId i = g.row_ptr[v]; i < g.row_ptr[static_cast<std::size_t>(v) + 1]; ++i) {
      const NodeId u = g.col_idx[static_cast<std::size_t>(i)];
      // Find the reverse slot.
      const auto nbrs = g.neighbors(u);
      const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
      ASSERT_TRUE(it != nbrs.end() && *it == v);  // symmetric graph
      const EdgeId rev = g.row_ptr[u] + (it - nbrs.begin());
      EXPECT_NEAR(sym[static_cast<std::size_t>(i)],
                  fwd[static_cast<std::size_t>(i)] + fwd[static_cast<std::size_t>(rev)], 1e-5f);
    }
  }
}

TEST(EdgeOps, CosIsEndpointDotProduct) {
  const Csr g = random_graph(15, 3.0, 16);
  Matrix left = random_matrix(15, 6, 17);
  Matrix right = random_matrix(15, 6, 18);
  const auto e = edge_cos(g, left, right);
  for (NodeId v = 0; v < g.num_nodes; ++v) {
    for (EdgeId i = g.row_ptr[v]; i < g.row_ptr[static_cast<std::size_t>(v) + 1]; ++i) {
      const NodeId u = g.col_idx[static_cast<std::size_t>(i)];
      EXPECT_NEAR(e[static_cast<std::size_t>(i)], tensor::dot(left.row(u), right.row(v)), 1e-4f);
    }
  }
}

TEST(EdgeOps, LinearDependsOnlyOnSource) {
  const Csr g = random_graph(15, 4.0, 19);
  Matrix left = random_matrix(15, 6, 20);
  const auto e = edge_linear(g, left);
  // All edges sharing a source get the same value.
  for (NodeId v = 0; v < g.num_nodes; ++v) {
    for (EdgeId i = g.row_ptr[v]; i < g.row_ptr[static_cast<std::size_t>(v) + 1]; ++i) {
      const NodeId u = g.col_idx[static_cast<std::size_t>(i)];
      float s = 0.0f;
      for (Index f = 0; f < 6; ++f) s += left(u, f);
      EXPECT_NEAR(e[static_cast<std::size_t>(i)], std::tanh(s), 1e-5f);
    }
  }
}

TEST(EdgeOps, GeneLinearMatchesFormula) {
  const Csr g = random_graph(12, 3.0, 21);
  Matrix left = random_matrix(12, 4, 22);
  Matrix right = random_matrix(12, 4, 23);
  Matrix wa = random_matrix(4, 1, 24);
  const auto e = edge_gene_linear(g, left, right, wa);
  for (NodeId v = 0; v < g.num_nodes; ++v) {
    for (EdgeId i = g.row_ptr[v]; i < g.row_ptr[static_cast<std::size_t>(v) + 1]; ++i) {
      const NodeId u = g.col_idx[static_cast<std::size_t>(i)];
      float expect = 0.0f;
      for (Index f = 0; f < 4; ++f) {
        expect += std::tanh(left(u, f) + right(v, f)) * wa(f, 0);
      }
      EXPECT_NEAR(e[static_cast<std::size_t>(i)], expect, 1e-5f);
    }
  }
}

}  // namespace
}  // namespace gnnbridge::models
