#include "models/gcn_grad.hpp"

#include <gtest/gtest.h>

#include "models/reference.hpp"
#include "tensor/ops.hpp"
#include "tests/testing/util.hpp"

namespace gnnbridge::models {
namespace {

struct GradFixture : public ::testing::Test {
  Csr g = testing::random_graph(12, 3.0, 1);
  GcnConfig cfg;
  GcnParams params;
  Matrix x, target;

  GradFixture() {
    cfg.dims = {5, 4, 3};
    params = init_gcn(cfg, 2);
    x = testing::random_matrix(12, 5, 3);
    target = testing::random_matrix(12, 3, 4);
  }

  float loss_at() const {
    const GcnForwardCache cache = gcn_forward_cached(g, x, cfg, params);
    return mse_loss(cache.inputs.back(), target);
  }
};

TEST_F(GradFixture, CachedForwardMatchesReference) {
  const GcnForwardCache cache = gcn_forward_cached(g, x, cfg, params);
  const Matrix expect = gcn_forward_ref(g, x, cfg, params);
  EXPECT_TRUE(tensor::allclose(cache.inputs.back(), expect, 1e-5f, 1e-6f));
  EXPECT_EQ(cache.inputs.size(), 3u);
  EXPECT_EQ(cache.transformed.size(), 2u);
}

TEST_F(GradFixture, MseLossAndGradConsistent) {
  Matrix out = testing::random_matrix(4, 3, 5);
  Matrix tgt = testing::random_matrix(4, 3, 6);
  const Matrix grad = mse_loss_grad(out, tgt);
  // Directional derivative check: loss(out + eps*d) - loss(out) ~ eps <grad, d>.
  Matrix dir = testing::random_matrix(4, 3, 7);
  const float eps = 1e-3f;
  Matrix moved = out;
  tensor::axpy(moved, eps, dir);
  const float analytic = tensor::dot({grad.data(), static_cast<std::size_t>(grad.size())},
                                     {dir.data(), static_cast<std::size_t>(dir.size())});
  const float numeric = (mse_loss(moved, tgt) - mse_loss(out, tgt)) / eps;
  EXPECT_NEAR(numeric, analytic, 5e-4f);
}

/// Finite-difference gradient checks — the gold standard for backward
/// implementations. Perturbs a sample of entries in every parameter.
TEST_F(GradFixture, WeightGradientsMatchFiniteDifferences) {
  const GcnForwardCache cache = gcn_forward_cached(g, x, cfg, params);
  const Matrix d_out = mse_loss_grad(cache.inputs.back(), target);
  const GcnGrads grads = gcn_backward(g, cfg, params, cache, d_out);

  const float eps = 1e-3f;
  for (std::size_t l = 0; l < params.weight.size(); ++l) {
    for (Index idx : {Index{0}, params.weight[l].size() / 2, params.weight[l].size() - 1}) {
      const float saved = params.weight[l].data()[idx];
      params.weight[l].data()[idx] = saved + eps;
      const float up = loss_at();
      params.weight[l].data()[idx] = saved - eps;
      const float down = loss_at();
      params.weight[l].data()[idx] = saved;
      const float numeric = (up - down) / (2.0f * eps);
      EXPECT_NEAR(grads.weight[l].data()[idx], numeric, 2e-3f)
          << "layer " << l << " idx " << idx;
    }
  }
}

TEST_F(GradFixture, BiasGradientsMatchFiniteDifferences) {
  const GcnForwardCache cache = gcn_forward_cached(g, x, cfg, params);
  const GcnGrads grads =
      gcn_backward(g, cfg, params, cache, mse_loss_grad(cache.inputs.back(), target));
  const float eps = 1e-3f;
  for (std::size_t l = 0; l < params.bias.size(); ++l) {
    for (Index idx = 0; idx < params.bias[l].rows(); ++idx) {
      const float saved = params.bias[l](idx, 0);
      params.bias[l](idx, 0) = saved + eps;
      const float up = loss_at();
      params.bias[l](idx, 0) = saved - eps;
      const float down = loss_at();
      params.bias[l](idx, 0) = saved;
      EXPECT_NEAR(grads.bias[l](idx, 0), (up - down) / (2.0f * eps), 2e-3f);
    }
  }
}

TEST_F(GradFixture, InputGradientsMatchFiniteDifferences) {
  const GcnForwardCache cache = gcn_forward_cached(g, x, cfg, params);
  const GcnGrads grads =
      gcn_backward(g, cfg, params, cache, mse_loss_grad(cache.inputs.back(), target));
  const float eps = 1e-3f;
  for (Index idx : {Index{0}, x.size() / 3, x.size() - 1}) {
    const float saved = x.data()[idx];
    x.data()[idx] = saved + eps;
    const float up = loss_at();
    x.data()[idx] = saved - eps;
    const float down = loss_at();
    x.data()[idx] = saved;
    EXPECT_NEAR(grads.input.data()[idx], (up - down) / (2.0f * eps), 2e-3f);
  }
}

TEST_F(GradFixture, SgdStepLowersLoss) {
  float prev = loss_at();
  for (int step = 0; step < 10; ++step) {
    const GcnForwardCache cache = gcn_forward_cached(g, x, cfg, params);
    const GcnGrads grads =
        gcn_backward(g, cfg, params, cache, mse_loss_grad(cache.inputs.back(), target));
    sgd_step(params, grads, 0.5f);
  }
  EXPECT_LT(loss_at(), prev);
}

TEST_F(GradFixture, GradShapesMatchParams) {
  const GcnForwardCache cache = gcn_forward_cached(g, x, cfg, params);
  const GcnGrads grads =
      gcn_backward(g, cfg, params, cache, mse_loss_grad(cache.inputs.back(), target));
  ASSERT_EQ(grads.weight.size(), params.weight.size());
  for (std::size_t l = 0; l < params.weight.size(); ++l) {
    EXPECT_EQ(grads.weight[l].rows(), params.weight[l].rows());
    EXPECT_EQ(grads.weight[l].cols(), params.weight[l].cols());
    EXPECT_EQ(grads.bias[l].rows(), params.bias[l].rows());
  }
  EXPECT_EQ(grads.input.rows(), x.rows());
  EXPECT_EQ(grads.input.cols(), x.cols());
}

}  // namespace
}  // namespace gnnbridge::models
