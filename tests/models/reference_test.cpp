#include "models/reference.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "models/layers.hpp"
#include "tensor/ops.hpp"
#include "tests/testing/util.hpp"

namespace gnnbridge::models {
namespace {

GcnConfig small_gcn() {
  GcnConfig cfg;
  cfg.dims = {12, 8, 4};
  return cfg;
}

GatConfig small_gat() {
  GatConfig cfg;
  cfg.dims = {10, 6, 3};
  return cfg;
}

TEST(GcnRef, OutputShape) {
  const Csr g = testing::random_graph(25, 4.0, 1);
  const GcnConfig cfg = small_gcn();
  const GcnParams p = init_gcn(cfg, 7);
  const Matrix x = init_features(25, 12, 7);
  const Matrix out = gcn_forward_ref(g, x, cfg, p);
  EXPECT_EQ(out.rows(), 25);
  EXPECT_EQ(out.cols(), 4);
}

TEST(GcnRef, SingleLayerHandVerifiable) {
  GcnConfig cfg;
  cfg.dims = {3, 2};
  const GcnParams p = init_gcn(cfg, 11);
  const Csr g = testing::csr_from_edges(2, {{0, 1}, {1, 0}});
  const Matrix x = testing::random_matrix(2, 3, 12);
  const Matrix out = gcn_forward_ref(g, x, cfg, p);

  const Matrix t = tensor::gemm(x, p.weight[0]);
  const auto norm = gcn_edge_norm(g);
  // Both nodes have degree 1 -> norm = 1/sqrt(2*2) = 0.5.
  for (Index f = 0; f < 2; ++f) {
    EXPECT_NEAR(out(0, f), 0.5f * t(1, f) + p.bias[0](f, 0), 1e-5f);
  }
  (void)norm;
}

TEST(GcnRef, InterLayerReluApplied) {
  // A 2-layer GCN's intermediate is non-negative; make the final layer
  // identity-ish to observe it: just check monotonic property instead —
  // run with all-positive weights and inputs, outputs stay positive.
  GcnConfig cfg;
  cfg.dims = {4, 3, 2};
  GcnParams p = init_gcn(cfg, 13);
  for (auto& w : p.weight) {
    for (Index i = 0; i < w.size(); ++i) w.data()[i] = std::fabs(w.data()[i]);
  }
  for (auto& b : p.bias) b.fill(0.0f);
  const Csr g = testing::random_graph(10, 3.0, 14);
  Matrix x = testing::random_matrix(10, 4, 15, 0.0f, 1.0f);
  const Matrix out = gcn_forward_ref(g, x, cfg, p);
  for (Index i = 0; i < out.size(); ++i) EXPECT_GE(out.data()[i], 0.0f);
}

TEST(GatRef, OutputShape) {
  const Csr g = testing::random_graph(20, 5.0, 2);
  const GatConfig cfg = small_gat();
  const GatParams p = init_gat(cfg, 17);
  const Matrix x = init_features(20, 10, 17);
  const Matrix out = gat_forward_ref(g, x, cfg, p);
  EXPECT_EQ(out.rows(), 20);
  EXPECT_EQ(out.cols(), 3);
}

TEST(GatRef, AttentionIsConvexCombination) {
  // One layer; every center's output lies in the convex hull of its
  // neighbors' transformed features (softmax weights sum to 1).
  GatConfig cfg;
  cfg.dims = {6, 4};
  const GatParams p = init_gat(cfg, 19);
  const Csr g = testing::random_graph(15, 4.0, 20);
  const Matrix x = testing::random_matrix(15, 6, 21);
  const Matrix out = gat_forward_ref(g, x, cfg, p);
  const Matrix t = tensor::gemm(x, p.weight[0]);
  for (NodeId v = 0; v < 15; ++v) {
    if (g.degree(v) == 0) continue;
    for (Index f = 0; f < 4; ++f) {
      float lo = 1e30f, hi = -1e30f;
      for (NodeId u : g.neighbors(v)) {
        lo = std::min(lo, t(u, f));
        hi = std::max(hi, t(u, f));
      }
      EXPECT_GE(out(v, f), lo - 1e-4f);
      EXPECT_LE(out(v, f), hi + 1e-4f);
    }
  }
}

TEST(SageLstmRef, OutputShape) {
  SageLstmConfig cfg;
  cfg.in_feat = 8;
  cfg.hidden = 6;
  cfg.steps = 4;
  const SageLstmParams p = init_sage_lstm(cfg, 23);
  const Csr g = testing::random_graph(12, 3.0, 24);
  const Matrix x = init_features(12, 8, 24);
  const Matrix out = sage_lstm_forward_ref(g, x, cfg, p);
  EXPECT_EQ(out.rows(), 12);
  EXPECT_EQ(out.cols(), 6);
}

TEST(SageLstmRef, MoreStepsChangeOutput) {
  SageLstmConfig a;
  a.in_feat = 5;
  a.hidden = 5;
  a.steps = 2;
  SageLstmConfig b = a;
  b.steps = 6;
  const SageLstmParams p = init_sage_lstm(a, 25);
  const Csr g = testing::random_graph(10, 4.0, 26);
  const Matrix x = init_features(10, 5, 26);
  const Matrix out_a = sage_lstm_forward_ref(g, x, a, p);
  const Matrix out_b = sage_lstm_forward_ref(g, x, b, p);
  EXPECT_GT(tensor::max_abs_diff(out_a, out_b), 1e-5f);
}

TEST(Params, DeterministicInit) {
  const GcnConfig cfg = small_gcn();
  const GcnParams a = init_gcn(cfg, 42);
  const GcnParams b = init_gcn(cfg, 42);
  EXPECT_EQ(a.weight[0], b.weight[0]);
  EXPECT_EQ(a.bias[1], b.bias[1]);
  const GcnParams c = init_gcn(cfg, 43);
  EXPECT_NE(a.weight[0], c.weight[0]);
}

TEST(Params, ShapesFollowConfig) {
  const GatConfig cfg = small_gat();
  const GatParams p = init_gat(cfg, 1);
  ASSERT_EQ(p.weight.size(), 2u);
  EXPECT_EQ(p.weight[0].rows(), 10);
  EXPECT_EQ(p.weight[0].cols(), 6);
  EXPECT_EQ(p.att_l[1].rows(), 3);
}

TEST(GcnNorm, SelfLoopAdjustedDegrees) {
  const Csr g = testing::csr_from_edges(3, {{0, 1}, {0, 2}});
  const auto norm = gcn_edge_norm(g);
  // deg(0)=2 -> 3 with self loop; deg(1)=deg(2)=0 -> 1.
  EXPECT_NEAR(norm[0], 1.0f / std::sqrt(3.0f * 1.0f), 1e-6f);
}

TEST(ModelName, Printable) {
  EXPECT_EQ(model_name(ModelKind::kGcn), "GCN");
  EXPECT_EQ(model_name(ModelKind::kSageLstm), "GraphSAGE-LSTM");
}

}  // namespace
}  // namespace gnnbridge::models
