#include "models/gat_grad.hpp"

#include <gtest/gtest.h>

#include "models/layers.hpp"
#include "tensor/ops.hpp"
#include "tests/testing/util.hpp"

namespace gnnbridge::models {
namespace {

struct GatGradFixture : public ::testing::Test {
  Csr g = testing::random_graph(10, 3.0, 1);
  Matrix h = testing::random_matrix(10, 5, 2);
  Matrix w = testing::random_matrix(5, 4, 3);
  Matrix al = testing::random_matrix(4, 1, 4);
  Matrix ar = testing::random_matrix(4, 1, 5);
  Matrix target = testing::random_matrix(10, 4, 6);

  float loss_at() const {
    const GatLayerCache c = gat_layer_forward_cached(g, h, w, al, ar);
    float acc = 0.0f;
    for (Index i = 0; i < c.output.size(); ++i) {
      const float d = c.output.data()[i] - target.data()[i];
      acc += 0.5f * d * d;
    }
    return acc;
  }

  Matrix loss_grad(const Matrix& out) const {
    Matrix d(out.rows(), out.cols());
    for (Index i = 0; i < out.size(); ++i) d.data()[i] = out.data()[i] - target.data()[i];
    return d;
  }
};

TEST_F(GatGradFixture, CachedForwardMatchesLayerZoo) {
  const GatLayerCache c = gat_layer_forward_cached(g, h, w, al, ar);
  const Matrix t = tensor::gemm(h, w);
  const auto scores = edge_gat(g, t, al, ar);
  const Matrix expect = layer_softmax_aggr(g, t, scores);
  EXPECT_TRUE(tensor::allclose(c.output, expect, 1e-4f, 1e-5f));
}

TEST_F(GatGradFixture, AlphaIsARowStochasticMatrix) {
  const GatLayerCache c = gat_layer_forward_cached(g, h, w, al, ar);
  for (graph::NodeId v = 0; v < g.num_nodes; ++v) {
    if (g.degree(v) == 0) continue;
    float sum = 0.0f;
    for (graph::EdgeId i = g.row_ptr[v]; i < g.row_ptr[static_cast<std::size_t>(v) + 1]; ++i) {
      EXPECT_GE(c.alpha[static_cast<std::size_t>(i)], 0.0f);
      sum += c.alpha[static_cast<std::size_t>(i)];
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST_F(GatGradFixture, WeightGradientMatchesFiniteDifferences) {
  const GatLayerCache c = gat_layer_forward_cached(g, h, w, al, ar);
  const GatLayerGrads grads = gat_layer_backward(g, w, al, ar, c, loss_grad(c.output));
  const float eps = 1e-3f;
  for (Index idx : {Index{0}, w.size() / 2, w.size() - 1}) {
    const float saved = w.data()[idx];
    w.data()[idx] = saved + eps;
    const float up = loss_at();
    w.data()[idx] = saved - eps;
    const float down = loss_at();
    w.data()[idx] = saved;
    EXPECT_NEAR(grads.weight.data()[idx], (up - down) / (2.0f * eps), 5e-2f) << idx;
  }
}

TEST_F(GatGradFixture, AttentionGradientsMatchFiniteDifferences) {
  const GatLayerCache c = gat_layer_forward_cached(g, h, w, al, ar);
  const GatLayerGrads grads = gat_layer_backward(g, w, al, ar, c, loss_grad(c.output));
  const float eps = 1e-3f;
  for (Index idx = 0; idx < al.rows(); ++idx) {
    float saved = al(idx, 0);
    al(idx, 0) = saved + eps;
    const float up = loss_at();
    al(idx, 0) = saved - eps;
    const float down = loss_at();
    al(idx, 0) = saved;
    EXPECT_NEAR(grads.att_l(idx, 0), (up - down) / (2.0f * eps), 5e-2f) << "att_l " << idx;

    saved = ar(idx, 0);
    ar(idx, 0) = saved + eps;
    const float up_r = loss_at();
    ar(idx, 0) = saved - eps;
    const float down_r = loss_at();
    ar(idx, 0) = saved;
    EXPECT_NEAR(grads.att_r(idx, 0), (up_r - down_r) / (2.0f * eps), 5e-2f) << "att_r " << idx;
  }
}

TEST_F(GatGradFixture, InputGradientMatchesFiniteDifferences) {
  const GatLayerCache c = gat_layer_forward_cached(g, h, w, al, ar);
  const GatLayerGrads grads = gat_layer_backward(g, w, al, ar, c, loss_grad(c.output));
  const float eps = 1e-3f;
  for (Index idx : {Index{0}, h.size() / 3, h.size() - 1}) {
    const float saved = h.data()[idx];
    h.data()[idx] = saved + eps;
    const float up = loss_at();
    h.data()[idx] = saved - eps;
    const float down = loss_at();
    h.data()[idx] = saved;
    EXPECT_NEAR(grads.input.data()[idx], (up - down) / (2.0f * eps), 5e-2f) << idx;
  }
}

TEST_F(GatGradFixture, GradientDescentLowersLoss) {
  const float before = loss_at();
  for (int step = 0; step < 20; ++step) {
    const GatLayerCache c = gat_layer_forward_cached(g, h, w, al, ar);
    const GatLayerGrads grads = gat_layer_backward(g, w, al, ar, c, loss_grad(c.output));
    tensor::axpy(w, -0.05f, grads.weight);
    tensor::axpy(al, -0.05f, grads.att_l);
    tensor::axpy(ar, -0.05f, grads.att_r);
  }
  EXPECT_LT(loss_at(), before);
}

}  // namespace
}  // namespace gnnbridge::models
