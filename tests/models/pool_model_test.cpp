#include "models/pool_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "models/layers.hpp"
#include "tensor/activations.hpp"
#include "tensor/ops.hpp"
#include "tests/testing/util.hpp"

namespace gnnbridge::models {
namespace {

TEST(SagePool, OutputShape) {
  const Csr g = testing::random_graph(20, 4.0, 1);
  SagePoolConfig cfg;
  cfg.in_feat = 10;
  cfg.pool_dim = 6;
  cfg.out_feat = 3;
  const SagePoolParams p = init_sage_pool(cfg, 2);
  const Matrix x = init_features(20, 10, 2);
  const Matrix out = sage_pool_forward_ref(g, x, cfg, p);
  EXPECT_EQ(out.rows(), 20);
  EXPECT_EQ(out.cols(), 3);
}

TEST(SagePool, AgreesWithLayerPoolingPrimitive) {
  // The model's pooling stage equals Table 1's pooling layer with unit
  // edge weights, up to the bias fold (layer_pooling has no bias).
  const Csr g = testing::random_graph(15, 3.0, 3);
  SagePoolConfig cfg;
  cfg.in_feat = 8;
  cfg.pool_dim = 5;
  cfg.out_feat = 4;
  SagePoolParams p = init_sage_pool(cfg, 4);
  p.b_pool.fill(0.0f);  // align with the bias-less primitive
  const Matrix x = init_features(15, 8, 4);

  const Matrix pooled_layer = layer_pooling(g, x, p.w_pool, edge_const(g));
  const Matrix full = sage_pool_forward_ref(g, x, cfg, p);
  const Matrix expect = tensor::gemm(pooled_layer, p.w_out);
  EXPECT_TRUE(tensor::allclose(full, expect, 1e-4f, 1e-5f));
}

TEST(SagePool, IsolatedNodesPoolToZero) {
  const Csr g = testing::csr_from_edges(4, {{0, 1}});
  SagePoolConfig cfg;
  cfg.in_feat = 4;
  cfg.pool_dim = 3;
  cfg.out_feat = 2;
  const SagePoolParams p = init_sage_pool(cfg, 5);
  const Matrix x = init_features(4, 4, 5);
  const Matrix out = sage_pool_forward_ref(g, x, cfg, p);
  // Nodes 1..3 have no in-neighbors: pooled = 0 => out = 0 * W = 0.
  for (NodeId v = 1; v < 4; ++v) {
    for (Index c = 0; c < 2; ++c) EXPECT_EQ(out(v, c), 0.0f);
  }
}

TEST(SagePool, MonotoneInNeighborFeatures) {
  // Raising every input feature (with non-negative pool weights) cannot
  // lower the ReLU'd pooled maxima.
  const Csr g = testing::random_graph(12, 4.0, 6);
  SagePoolConfig cfg;
  cfg.in_feat = 5;
  cfg.pool_dim = 4;
  cfg.out_feat = 4;
  SagePoolParams p = init_sage_pool(cfg, 7);
  for (Index i = 0; i < p.w_pool.size(); ++i) {
    p.w_pool.data()[i] = std::fabs(p.w_pool.data()[i]);
  }
  // Identity-ish output weights isolate the pooled stage.
  p.w_out.fill(0.0f);
  for (Index i = 0; i < 4; ++i) p.w_out(i, i) = 1.0f;

  Matrix x = init_features(12, 5, 8);
  for (Index i = 0; i < x.size(); ++i) x.data()[i] = std::fabs(x.data()[i]);
  const Matrix lo = sage_pool_forward_ref(g, x, cfg, p);
  tensor::scale(x, 2.0f);
  const Matrix hi = sage_pool_forward_ref(g, x, cfg, p);
  for (Index i = 0; i < lo.size(); ++i) EXPECT_GE(hi.data()[i], lo.data()[i] - 1e-5f);
}

}  // namespace
}  // namespace gnnbridge::models
