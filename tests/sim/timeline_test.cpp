#include "sim/timeline.hpp"

#include <gtest/gtest.h>

namespace gnnbridge::sim {
namespace {

TEST(Timeline, EmptyHasZeroDuration) {
  Timeline t;
  EXPECT_EQ(t.duration(), 0.0);
  EXPECT_EQ(t.fraction_below(1.0, 8), 0.0);
  EXPECT_EQ(t.mean_active(), 0.0);
}

TEST(Timeline, SingleInterval) {
  Timeline t;
  t.add_interval(0.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(t.duration(), 10.0);
  EXPECT_DOUBLE_EQ(t.mean_active(), 4.0);
}

TEST(Timeline, IgnoresEmptyIntervals) {
  Timeline t;
  t.add_interval(5.0, 5.0, 3);
  t.add_interval(7.0, 6.0, 3);
  EXPECT_DOUBLE_EQ(t.duration(), 0.0);
}

TEST(Timeline, FractionBelowThreshold) {
  Timeline t;
  t.add_interval(0.0, 60.0, 8);   // full
  t.add_interval(60.0, 100.0, 2); // tail
  // capacity 8: <100% threshold=8 -> active 2 qualifies, active 8 doesn't.
  EXPECT_DOUBLE_EQ(t.fraction_below(1.0, 8), 0.4);
  // <50% -> threshold 4: only the tail.
  EXPECT_DOUBLE_EQ(t.fraction_below(0.5, 8), 0.4);
  // <10% -> threshold 0.8: nothing.
  EXPECT_DOUBLE_EQ(t.fraction_below(0.1, 8), 0.0);
}

TEST(Timeline, MeanIsTimeWeighted) {
  Timeline t;
  t.add_interval(0.0, 10.0, 10);
  t.add_interval(10.0, 40.0, 2);
  EXPECT_DOUBLE_EQ(t.mean_active(), (10.0 * 10 + 2.0 * 30) / 40.0);
}

TEST(Timeline, AppendConcatenates) {
  Timeline a, b;
  a.add_interval(0.0, 10.0, 1);
  b.add_interval(0.0, 10.0, 3);
  a.append(b);
  EXPECT_DOUBLE_EQ(a.duration(), 20.0);
  EXPECT_DOUBLE_EQ(a.mean_active(), 2.0);
}

TEST(Timeline, StrictlyBelowSemantics) {
  Timeline t;
  t.add_interval(0.0, 10.0, 4);
  // Exactly at threshold does not count as below.
  EXPECT_DOUBLE_EQ(t.fraction_below(0.5, 8), 0.0);
  EXPECT_DOUBLE_EQ(t.fraction_below(0.5001, 8), 1.0);
}

}  // namespace
}  // namespace gnnbridge::sim
