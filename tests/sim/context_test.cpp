#include "sim/context.hpp"

#include <gtest/gtest.h>

namespace gnnbridge::sim {
namespace {

DeviceSpec tiny_device() {
  DeviceSpec s;
  s.num_sms = 2;
  s.max_blocks_per_sm = 2;
  s.l2_bytes = 64 * 1024;
  s.l2_ways = 4;
  s.line_bytes = 64;
  return s;
}

TEST(AddressSpace, BuffersAreDisjointAndAligned) {
  AddressSpace mem;
  const Buffer a = mem.alloc("a", 100);
  const Buffer b = mem.alloc("b", 100);
  EXPECT_EQ(a.base % 256, 0u);
  EXPECT_EQ(b.base % 256, 0u);
  EXPECT_GE(b.base, a.base + a.bytes);
  EXPECT_EQ(mem.total_allocated(), 200u);
}

TEST(AddressSpace, ZeroByteAllocGetsNonEmptyRange) {
  AddressSpace mem;
  const Buffer a = mem.alloc("a", 0);
  EXPECT_GE(a.bytes, 1u);
}

TEST(Context, LaunchAccountsLaunchOverhead) {
  SimContext ctx(tiny_device());
  Kernel k;
  k.name = "empty";
  ctx.launch(std::move(k));
  EXPECT_EQ(ctx.stats().num_launches(), 1);
  EXPECT_DOUBLE_EQ(ctx.stats().total_cycles, ctx.spec().kernel_launch_cycles);
}

TEST(Context, CountersAccumulateAcrossKernels) {
  SimContext ctx(tiny_device());
  const Buffer buf = ctx.mem().alloc("data", 4096);
  for (int i = 0; i < 3; ++i) {
    Kernel k;
    k.name = "touch";
    BlockWork blk;
    blk.read(buf, 0, 256);
    blk.compute(10.0, 10.0);
    k.blocks.push_back(blk);
    ctx.launch(std::move(k));
  }
  EXPECT_EQ(ctx.stats().num_launches(), 3);
  // 4 lines: first kernel misses, later kernels hit the warm L2.
  EXPECT_EQ(ctx.stats().total_misses(), 4u);
  EXPECT_EQ(ctx.stats().total_hits(), 8u);
  EXPECT_DOUBLE_EQ(ctx.stats().total_flops(), 30.0);
}

TEST(Context, ClearCacheColdStarts) {
  SimContext ctx(tiny_device());
  const Buffer buf = ctx.mem().alloc("data", 4096);
  auto touch = [&] {
    Kernel k;
    BlockWork blk;
    blk.read(buf, 0, 256);
    k.blocks.push_back(blk);
    ctx.launch(std::move(k));
  };
  touch();
  ctx.clear_cache();
  touch();
  EXPECT_EQ(ctx.stats().total_misses(), 8u);
}

TEST(Context, ComputeBoundBlockCostFollowsFlops) {
  SimContext ctx(tiny_device());
  Kernel k;
  BlockWork blk;
  blk.compute(1600.0, 1600.0);  // 100 cycles at 16 flops/cycle
  k.blocks.push_back(blk);
  const KernelStats& ks = ctx.launch(std::move(k));
  EXPECT_NEAR(ks.makespan, 100.0, 1e-6);
}

TEST(Context, MemoryBoundBlockCostFollowsMissCost) {
  DeviceSpec spec = tiny_device();
  SimContext ctx(spec);
  const Buffer buf = ctx.mem().alloc("data", 1 << 20);
  Kernel k;
  BlockWork blk;
  blk.read(buf, 0, static_cast<std::uint32_t>(64 * 100));  // 100 cold lines
  k.blocks.push_back(blk);
  const KernelStats& ks = ctx.launch(std::move(k));
  // A lone block gets a bigger bandwidth share (1/8 of the fully-occupied
  // per-block cost), but never beats the device bandwidth floor
  // (total traffic / slot count).
  const Cycles shared = 100.0 * spec.dram_cycles_per_line / 8.0;
  const Cycles floor = 100.0 * spec.dram_cycles_per_line / spec.total_block_slots();
  EXPECT_NEAR(ks.makespan, std::max(shared, floor), 1e-6);
  EXPECT_EQ(ks.l2_misses, 100u);
  EXPECT_EQ(ks.dram_bytes, 6400u);
}

TEST(Context, FullGridPaysFullPerBlockMemoryCost) {
  DeviceSpec spec = tiny_device();  // 4 slots
  SimContext ctx(spec);
  const Buffer buf = ctx.mem().alloc("data", 1 << 20);
  Kernel k;
  for (int b = 0; b < 4; ++b) {
    BlockWork blk;
    blk.read(buf, static_cast<std::uint64_t>(b) * 6400, 64 * 100);
    k.blocks.push_back(blk);
  }
  const KernelStats& ks = ctx.launch(std::move(k));
  EXPECT_NEAR(ks.makespan, 100.0 * spec.dram_cycles_per_line, 1e-6);
}

TEST(Context, SharedCacheGivesCoResidentReuse) {
  // Two blocks touching the same data in one wave: the second stream
  // largely hits because the replay interleaves co-resident blocks.
  SimContext ctx(tiny_device());
  const Buffer buf = ctx.mem().alloc("data", 1 << 16);
  Kernel k;
  for (int b = 0; b < 2; ++b) {
    BlockWork blk;
    for (int i = 0; i < 32; ++i) blk.read(buf, static_cast<std::uint64_t>(i) * 64, 64);
    k.blocks.push_back(blk);
  }
  const KernelStats& ks = ctx.launch(std::move(k));
  EXPECT_EQ(ks.l2_misses, 32u);
  EXPECT_EQ(ks.l2_hits, 32u);
  EXPECT_DOUBLE_EQ(ks.l2_hit_rate(), 0.5);
}

TEST(Context, FarApartBlocksMissWhenCacheTiny) {
  // Same data touched by blocks that are NOT co-resident (more blocks than
  // slots, distinct early data evicts) -> reuse lost. This is the
  // mechanism LAS exploits in reverse.
  DeviceSpec spec = tiny_device();
  spec.l2_bytes = 2 * 1024;  // 32 lines only
  SimContext ctx(spec);
  const Buffer buf = ctx.mem().alloc("data", 1 << 20);
  Kernel k;
  // 16 blocks each streaming 64 distinct lines, then 16 blocks re-reading
  // block 0's lines. With 4 slots, the re-readers run long after.
  for (int b = 0; b < 16; ++b) {
    BlockWork blk;
    for (int i = 0; i < 64; ++i) {
      blk.read(buf, static_cast<std::uint64_t>(b) * 4096 + static_cast<std::uint64_t>(i) * 64, 64);
    }
    k.blocks.push_back(blk);
  }
  BlockWork rereader;
  for (int i = 0; i < 64; ++i) rereader.read(buf, static_cast<std::uint64_t>(i) * 64, 64);
  k.blocks.push_back(rereader);
  const KernelStats& ks = ctx.launch(std::move(k));
  EXPECT_LT(ks.l2_hit_rate(), 0.1);
}

TEST(Context, AtomicMergeCountsTrafficAndExtendsBlockTime) {
  SimContext ctx(tiny_device());
  Kernel k;
  BlockWork blk;
  blk.compute(1600.0, 1600.0);  // 100 cycles at 16 flops/cycle
  blk.atomic_merge(40.0, 256);
  k.blocks.push_back(blk);
  const KernelStats& ks = ctx.launch(std::move(k));
  EXPECT_DOUBLE_EQ(ks.atomic_cycles, 40.0);
  EXPECT_EQ(ks.atomic_bytes, 256u);
  EXPECT_NEAR(ks.makespan, 140.0, 1e-6);  // extra_cycles ride on the block
}

TEST(Context, AdapterCountsTrafficSeparatelyFromAtomics) {
  SimContext ctx(tiny_device());
  Kernel k;
  BlockWork blk;
  blk.adapter(25.0, 128);
  k.blocks.push_back(blk);
  const KernelStats& ks = ctx.launch(std::move(k));
  EXPECT_DOUBLE_EQ(ks.adapter_cycles, 25.0);
  EXPECT_EQ(ks.adapter_bytes, 128u);
  EXPECT_DOUBLE_EQ(ks.atomic_cycles, 0.0);
  EXPECT_EQ(ks.atomic_bytes, 0u);
}

TEST(Context, RedundantFlopCausesAreBrokenOut) {
  SimContext ctx(tiny_device());
  Kernel k;
  BlockWork blk;
  blk.compute(100.0, 160.0);       // 60 pad flops (lane padding)
  blk.compute_copy(32.0);          // pure data movement
  blk.compute_tiled(200.0, 256.0); // 56 boundary-tile flops
  k.blocks.push_back(blk);
  const KernelStats& ks = ctx.launch(std::move(k));
  EXPECT_DOUBLE_EQ(ks.pad_flops, 60.0);
  EXPECT_DOUBLE_EQ(ks.copy_flops, 32.0);
  EXPECT_DOUBLE_EQ(ks.tile_flops, 56.0);
  EXPECT_DOUBLE_EQ(ks.flops, 300.0);
  EXPECT_DOUBLE_EQ(ks.issued_flops, 448.0);
  EXPECT_DOUBLE_EQ(ks.waste_flops(), 148.0);  // pad + copy + tile
}

TEST(Context, EveryLaunchIsOneGlobalSync) {
  SimContext ctx(tiny_device());
  for (int i = 0; i < 3; ++i) {
    Kernel k;
    k.name = "noop";
    ctx.launch(std::move(k));
  }
  EXPECT_EQ(ctx.stats().global_syncs, 3u);
}

TEST(Context, StatsResetKeepsAllocations) {
  SimContext ctx(tiny_device());
  ctx.mem().alloc("x", 128);
  Kernel k;
  ctx.launch(std::move(k));
  ctx.reset_stats();
  EXPECT_EQ(ctx.stats().num_launches(), 0);
  EXPECT_EQ(ctx.mem().total_allocated(), 128u);
}

TEST(RunStats, PhaseAccounting) {
  SimContext ctx(tiny_device());
  Kernel a;
  a.name = "k1";
  a.phase = "expansion";
  ctx.launch(std::move(a));
  Kernel b;
  b.name = "k2";
  b.phase = "transformation";
  ctx.launch(std::move(b));
  const Cycles exp = ctx.stats().cycles_in_phase("expansion");
  EXPECT_GT(exp, 0.0);
  EXPECT_DOUBLE_EQ(exp, ctx.stats().cycles_in_phase("transformation"));
  EXPECT_DOUBLE_EQ(ctx.stats().cycles_in_phase("nope"), 0.0);
}

TEST(DeviceSpec, UnitConversions) {
  DeviceSpec s;
  s.clock_ghz = 1.0;
  EXPECT_DOUBLE_EQ(s.seconds(1e9), 1.0);
  EXPECT_DOUBLE_EQ(s.millis(1e6), 1.0);
  EXPECT_EQ(v100().total_block_slots(), 640);
}

}  // namespace
}  // namespace gnnbridge::sim
