// Edge cases of the performance counters (sim/counters.hpp): the derived
// rates must be well-defined — not NaN/inf — on empty or degenerate runs,
// because the metrics sink serializes them for every bench binary.
#include "sim/counters.hpp"

#include <gtest/gtest.h>

namespace gnnbridge::sim {
namespace {

TEST(KernelStatsTest, HitRateZeroAccessesIsZero) {
  KernelStats k;
  EXPECT_EQ(k.l2_hits, 0u);
  EXPECT_EQ(k.l2_misses, 0u);
  EXPECT_DOUBLE_EQ(k.l2_hit_rate(), 0.0);
  EXPECT_DOUBLE_EQ(k.l2_miss_rate(), 0.0);
}

TEST(KernelStatsTest, HitAndMissRatesSumToOne) {
  KernelStats k;
  k.l2_hits = 30;
  k.l2_misses = 10;
  EXPECT_DOUBLE_EQ(k.l2_hit_rate(), 0.75);
  EXPECT_DOUBLE_EQ(k.l2_miss_rate(), 0.25);
  EXPECT_DOUBLE_EQ(k.l2_hit_rate() + k.l2_miss_rate(), 1.0);
}

TEST(RunStatsTest, EmptyRunHasZeroTotals) {
  RunStats r;
  EXPECT_EQ(r.num_launches(), 0);
  EXPECT_DOUBLE_EQ(r.total_flops(), 0.0);
  EXPECT_EQ(r.total_hits(), 0u);
  EXPECT_EQ(r.total_misses(), 0u);
  EXPECT_DOUBLE_EQ(r.l2_hit_rate(), 0.0);
}

TEST(RunStatsTest, CyclesInUnknownPhaseIsZero) {
  RunStats r;
  KernelStats k;
  k.phase = "expansion";
  k.cycles = 1000.0;
  r.kernels.push_back(k);
  EXPECT_DOUBLE_EQ(r.cycles_in_phase("expansion"), 1000.0);
  EXPECT_DOUBLE_EQ(r.cycles_in_phase("no-such-phase"), 0.0);
  EXPECT_DOUBLE_EQ(r.cycles_in_phase(""), 0.0);
}

TEST(RunStatsTest, GflopsZeroCyclesIsZeroNotInf) {
  RunStats r;
  KernelStats k;
  k.flops = 1e9;
  r.kernels.push_back(k);
  ASSERT_DOUBLE_EQ(r.total_cycles, 0.0);
  const double g = r.gflops(v100());
  EXPECT_DOUBLE_EQ(g, 0.0);
}

TEST(KernelStatsTest, WasteFlopsIsIssuedMinusUseful) {
  KernelStats k;
  k.flops = 100.0;
  k.issued_flops = 160.0;
  EXPECT_DOUBLE_EQ(k.waste_flops(), 60.0);
}

TEST(KernelStatsTest, ImbalanceDegenerateBalancedIsOne) {
  KernelStats k;
  EXPECT_DOUBLE_EQ(k.imbalance(), 1.0);
  k.makespan = 300.0;
  k.balanced = 200.0;
  EXPECT_DOUBLE_EQ(k.imbalance(), 1.5);
}

TEST(RunStatsTest, SyncTrafficTotalsAccumulateAcrossKernels) {
  RunStats r;
  KernelStats a;
  a.atomic_cycles = 10.0;
  a.atomic_bytes = 100;
  a.adapter_cycles = 5.0;
  a.adapter_bytes = 50;
  KernelStats b;
  b.atomic_cycles = 30.0;
  b.atomic_bytes = 300;
  b.adapter_cycles = 15.0;
  b.adapter_bytes = 150;
  r.kernels = {a, b};
  EXPECT_DOUBLE_EQ(r.total_atomic_cycles(), 40.0);
  EXPECT_EQ(r.total_atomic_bytes(), 400u);
  EXPECT_DOUBLE_EQ(r.total_adapter_cycles(), 20.0);
  EXPECT_EQ(r.total_adapter_bytes(), 200u);
}

TEST(RunStatsTest, RunImbalanceIsMakespanSumOverBalancedSum) {
  RunStats r;
  EXPECT_DOUBLE_EQ(r.imbalance(), 1.0);  // degenerate: no kernels
  KernelStats a;
  a.makespan = 300.0;
  a.balanced = 100.0;
  KernelStats b;
  b.makespan = 100.0;
  b.balanced = 100.0;
  r.kernels = {a, b};
  EXPECT_DOUBLE_EQ(r.imbalance(), 2.0);
}

TEST(RunStatsTest, TotalsAccumulateAcrossKernels) {
  RunStats r;
  KernelStats a;
  a.l2_hits = 10;
  a.l2_misses = 10;
  a.flops = 100.0;
  KernelStats b;
  b.l2_hits = 20;
  b.l2_misses = 0;
  b.flops = 50.0;
  r.kernels = {a, b};
  r.total_cycles = 1.38e9;  // one simulated second on the default clock
  EXPECT_EQ(r.num_launches(), 2);
  EXPECT_EQ(r.total_hits(), 30u);
  EXPECT_EQ(r.total_misses(), 10u);
  EXPECT_DOUBLE_EQ(r.l2_hit_rate(), 0.75);
  EXPECT_DOUBLE_EQ(r.total_flops(), 150.0);
  EXPECT_NEAR(r.gflops(v100()), 150.0 / 1e9, 1e-12);
}

}  // namespace
}  // namespace gnnbridge::sim
