// Property tests on the simulation substrate itself: determinism, trace
// value-independence, and cost-model monotonicity. These are the
// invariants every reproduced figure silently relies on.
#include <gtest/gtest.h>

#include "kernels/spmm.hpp"
#include "tests/testing/util.hpp"

namespace gnnbridge::sim {
namespace {

using gnnbridge::testing::random_graph;
using gnnbridge::testing::random_matrix;

namespace k = gnnbridge::kernels;

KernelStats run_spmm(const graph::Csr& csr, tensor::Index feat, int lanes,
                     k::ExecMode mode, DeviceSpec spec = v100(), std::uint64_t seed = 7) {
  SimContext ctx(spec);
  const auto gdev = k::device_graph(ctx, csr, "g");
  tensor::Matrix src_host = random_matrix(csr.num_nodes, feat, seed);
  tensor::Matrix out_host(csr.num_nodes, feat);
  auto src = k::device_mat(ctx, src_host, "src");
  auto out = k::device_mat(ctx, out_host, "out");
  const auto tasks = k::natural_tasks(csr);
  k::SpmmArgs args{.graph = &gdev, .tasks = tasks, .src = &src, .out = &out,
                   .lanes = lanes, .mode = mode};
  return k::spmm_node(ctx, args);
}

class ReplayProperties : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ReplayProperties, DeterministicAcrossRuns) {
  auto [feat, lanes] = GetParam();
  const graph::Csr g = random_graph(150, 8.0, 3);
  const KernelStats a = run_spmm(g, feat, lanes, k::ExecMode::kSimulateOnly);
  const KernelStats b = run_spmm(g, feat, lanes, k::ExecMode::kSimulateOnly);
  EXPECT_EQ(a.l2_hits, b.l2_hits);
  EXPECT_EQ(a.l2_misses, b.l2_misses);
  EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST_P(ReplayProperties, TraceIsValueIndependent) {
  auto [feat, lanes] = GetParam();
  const graph::Csr g = random_graph(120, 6.0, 5);
  // Different feature *values* (different seeds), identical traces.
  const KernelStats full1 = run_spmm(g, feat, lanes, k::ExecMode::kFull, v100(), 11);
  const KernelStats full2 = run_spmm(g, feat, lanes, k::ExecMode::kFull, v100(), 99);
  const KernelStats simo = run_spmm(g, feat, lanes, k::ExecMode::kSimulateOnly, v100(), 11);
  EXPECT_EQ(full1.l2_misses, full2.l2_misses);
  EXPECT_EQ(full1.l2_misses, simo.l2_misses);
  EXPECT_DOUBLE_EQ(full1.cycles, simo.cycles);
}

INSTANTIATE_TEST_SUITE_P(FeatLanes, ReplayProperties,
                         ::testing::Combine(::testing::Values(8, 33, 64),
                                            ::testing::Values(8, 32)));

TEST(CostModel, MoreEdgesNeverCheaper) {
  // Adding edges (strictly more work + traffic) must not reduce cycles.
  const graph::Csr small = random_graph(200, 4.0, 7);
  const graph::Csr big = random_graph(200, 16.0, 7);
  ASSERT_GT(big.num_edges(), small.num_edges());
  const KernelStats a = run_spmm(small, 32, 32, k::ExecMode::kSimulateOnly);
  const KernelStats b = run_spmm(big, 32, 32, k::ExecMode::kSimulateOnly);
  EXPECT_GT(b.cycles, a.cycles);
}

TEST(CostModel, WiderFeaturesNeverCheaper) {
  const graph::Csr g = random_graph(200, 8.0, 9);
  const KernelStats narrow = run_spmm(g, 16, 32, k::ExecMode::kSimulateOnly);
  const KernelStats wide = run_spmm(g, 128, 32, k::ExecMode::kSimulateOnly);
  EXPECT_GT(wide.cycles, narrow.cycles);
}

TEST(CostModel, LargerCacheNeverMoreMisses) {
  const graph::Csr g = random_graph(3000, 12.0, 11);
  DeviceSpec small_cache = v100();
  small_cache.l2_bytes = 256 * 1024;
  DeviceSpec big_cache = v100();
  big_cache.l2_bytes = 24ll * 1024 * 1024;
  const KernelStats a = run_spmm(g, 64, 32, k::ExecMode::kSimulateOnly, small_cache);
  const KernelStats b = run_spmm(g, 64, 32, k::ExecMode::kSimulateOnly, big_cache);
  EXPECT_GE(a.l2_misses, b.l2_misses);
}

TEST(CostModel, FrameworkOverheadIsPerLaunch) {
  const graph::Csr g = random_graph(50, 4.0, 13);
  DeviceSpec base = v100();
  DeviceSpec framework = v100();
  framework.framework_overhead_cycles = 30000.0;
  const KernelStats a = run_spmm(g, 16, 32, k::ExecMode::kSimulateOnly, base);
  const KernelStats b = run_spmm(g, 16, 32, k::ExecMode::kSimulateOnly, framework);
  EXPECT_DOUBLE_EQ(b.cycles - a.cycles, 30000.0);
}

TEST(CostModel, LaunchOverheadFloorsTinyKernels) {
  // A one-edge kernel still costs at least the launch overhead.
  const graph::Csr g = gnnbridge::testing::csr_from_edges(2, {{0, 1}});
  const KernelStats ks = run_spmm(g, 4, 32, k::ExecMode::kSimulateOnly);
  EXPECT_GE(ks.cycles, v100().kernel_launch_cycles);
}

}  // namespace
}  // namespace gnnbridge::sim
