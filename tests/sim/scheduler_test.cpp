#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gnnbridge::sim {
namespace {

TEST(Scheduler, EmptyKernel) {
  const ScheduleResult r = schedule_blocks({}, 8);
  EXPECT_EQ(r.makespan, 0.0);
  EXPECT_EQ(r.balanced, 0.0);
}

TEST(Scheduler, SingleBlock) {
  const std::vector<Cycles> d{100.0};
  const ScheduleResult r = schedule_blocks(d, 4);
  EXPECT_DOUBLE_EQ(r.makespan, 100.0);
  // One block can only ever occupy one slot: the perfect-balance bound is
  // the block itself, not total/slots.
  EXPECT_DOUBLE_EQ(r.balanced, 100.0);
}

TEST(Scheduler, FewerBlocksThanSlotsBoundsOverOccupiableSlots) {
  const std::vector<Cycles> d{30.0, 10.0};
  const ScheduleResult r = schedule_blocks(d, 8);
  EXPECT_DOUBLE_EQ(r.makespan, 30.0);
  EXPECT_DOUBLE_EQ(r.balanced, 20.0);  // 40 / min(8, 2)
  EXPECT_GE(r.makespan, r.balanced);
}

TEST(Scheduler, PerfectPackingEqualsBalanced) {
  const std::vector<Cycles> d(16, 10.0);
  const ScheduleResult r = schedule_blocks(d, 4);
  EXPECT_DOUBLE_EQ(r.makespan, 40.0);
  EXPECT_DOUBLE_EQ(r.balanced, 40.0);
}

TEST(Scheduler, LongTailDominatesMakespan) {
  // One whale, many shrimp: the whale sets the makespan (the paper's
  // long-tail effect, Observation 2).
  std::vector<Cycles> d(31, 1.0);
  d.push_back(1000.0);
  const ScheduleResult r = schedule_blocks(d, 32);
  EXPECT_DOUBLE_EQ(r.makespan, 1000.0);
  EXPECT_NEAR(r.balanced, (31.0 + 1000.0) / 32.0, 1e-9);
  EXPECT_GT(r.makespan, 10.0 * r.balanced);
}

TEST(Scheduler, MakespanNeverBelowBalanced) {
  std::vector<Cycles> d;
  for (int i = 0; i < 100; ++i) d.push_back(static_cast<Cycles>(1 + (i * 37) % 50));
  const ScheduleResult r = schedule_blocks(d, 7);
  EXPECT_GE(r.makespan, r.balanced - 1e-9);
}

TEST(Scheduler, MoreSlotsNeverSlower) {
  std::vector<Cycles> d;
  for (int i = 0; i < 64; ++i) d.push_back(static_cast<Cycles>(1 + (i * 13) % 20));
  const Cycles m4 = schedule_blocks(d, 4).makespan;
  const Cycles m16 = schedule_blocks(d, 16).makespan;
  EXPECT_LE(m16, m4 + 1e-9);
}

TEST(Scheduler, TimelinePeaksAtSlotCount) {
  const std::vector<Cycles> d(64, 10.0);
  const ScheduleResult r = schedule_blocks(d, 8);
  // All 8 slots busy the whole time.
  EXPECT_NEAR(r.timeline.mean_active(), 8.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.timeline.fraction_below(1.0, 8), 0.0);
}

TEST(Scheduler, TailShowsUpInOccupancy) {
  std::vector<Cycles> d(8, 1.0);
  d.push_back(92.0);  // after the 8 shrimp finish, one whale runs alone
  const ScheduleResult r = schedule_blocks(d, 8);
  // Over ~99% of the time fewer than half the slots are active.
  EXPECT_GT(r.timeline.fraction_below(0.5, 8), 0.9);
}

TEST(Scheduler, DeterministicAcrossCalls) {
  std::vector<Cycles> d;
  for (int i = 0; i < 200; ++i) d.push_back(static_cast<Cycles>(1 + (i * 7919) % 97));
  const ScheduleResult a = schedule_blocks(d, 11);
  const ScheduleResult b = schedule_blocks(d, 11);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.timeline.mean_active(), b.timeline.mean_active());
}

TEST(Scheduler, GreedyDispatchOrder) {
  // Two slots; blocks 10, 10, 5: third block starts at t=10 on either
  // slot -> makespan 15.
  const std::vector<Cycles> d{10.0, 10.0, 5.0};
  EXPECT_DOUBLE_EQ(schedule_blocks(d, 2).makespan, 15.0);
}

}  // namespace
}  // namespace gnnbridge::sim
