#include "sim/cache.hpp"

#include <gtest/gtest.h>

namespace gnnbridge::sim {
namespace {

TEST(Cache, FirstTouchMisses) {
  SetAssocCache c(1024, 2, 64);
  EXPECT_FALSE(c.access_line(0));
  EXPECT_EQ(c.total_misses(), 1u);
  EXPECT_EQ(c.total_hits(), 0u);
}

TEST(Cache, SecondTouchHits) {
  SetAssocCache c(1024, 2, 64);
  c.access_line(128);
  EXPECT_TRUE(c.access_line(128));
  EXPECT_EQ(c.total_hits(), 1u);
}

TEST(Cache, DistinctLinesInSameSetCoexistUpToWays) {
  // 1024 B, 2-way, 64 B lines -> 8 sets. Lines 0 and 8*64 share set 0.
  SetAssocCache c(1024, 2, 64);
  ASSERT_EQ(c.num_sets(), 8);
  c.access_line(0);
  c.access_line(8 * 64);
  EXPECT_TRUE(c.access_line(0));
  EXPECT_TRUE(c.access_line(8 * 64));
}

TEST(Cache, LruEvictionOrder) {
  SetAssocCache c(1024, 2, 64);  // 8 sets, 2 ways
  const std::uint64_t a = 0, b = 8 * 64, d = 16 * 64;  // same set
  c.access_line(a);
  c.access_line(b);
  c.access_line(a);      // a most recent
  c.access_line(d);      // evicts b (LRU)
  EXPECT_TRUE(c.access_line(a));
  EXPECT_FALSE(c.access_line(b));  // was evicted
}

TEST(Cache, AccessSpansMultipleLines) {
  SetAssocCache c(4096, 4, 64);
  const CacheProbe p = c.access(0, 256);  // exactly 4 lines
  EXPECT_EQ(p.lines, 4u);
  EXPECT_EQ(p.misses, 4u);
  const CacheProbe p2 = c.access(0, 256);
  EXPECT_EQ(p2.hits, 4u);
}

TEST(Cache, UnalignedAccessCountsStraddledLines) {
  SetAssocCache c(4096, 4, 64);
  // 64 bytes starting at offset 32 straddles two lines.
  const CacheProbe p = c.access(32, 64);
  EXPECT_EQ(p.lines, 2u);
}

TEST(Cache, ZeroByteAccessIsNoop) {
  SetAssocCache c(4096, 4, 64);
  const CacheProbe p = c.access(0, 0);
  EXPECT_EQ(p.lines, 0u);
  EXPECT_EQ(c.total_misses(), 0u);
}

TEST(Cache, ClearInvalidatesEverything) {
  SetAssocCache c(1024, 2, 64);
  c.access_line(0);
  c.clear();
  EXPECT_FALSE(c.access_line(0));
}

TEST(Cache, SetCountRoundsDownToPowerOfTwo) {
  // 6 MiB / (16 * 64) = 6144 raw sets -> 4096.
  SetAssocCache c(6 * 1024 * 1024, 16, 64);
  EXPECT_EQ(c.num_sets(), 4096);
}

TEST(Cache, WorkingSetLargerThanCapacityThrashes) {
  SetAssocCache c(1024, 2, 64);  // 16 lines capacity
  // Stream 64 distinct lines twice: second pass still mostly misses.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t l = 0; l < 64; ++l) c.access_line(l * 64);
  }
  EXPECT_GT(c.total_misses(), 100u);
}

TEST(Cache, WorkingSetWithinCapacityReuses) {
  SetAssocCache c(8192, 4, 64);  // 128 lines
  for (int pass = 0; pass < 4; ++pass) {
    for (std::uint64_t l = 0; l < 32; ++l) c.access_line(l * 64);
  }
  EXPECT_EQ(c.total_misses(), 32u);
  EXPECT_EQ(c.total_hits(), 96u);
}

}  // namespace
}  // namespace gnnbridge::sim
