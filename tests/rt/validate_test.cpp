#include "rt/validate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "tests/testing/util.hpp"

namespace gnnbridge::rt {
namespace {

TEST(ValidateCsrTest, AcceptsGeneratedGraph) {
  const graph::Csr g = gnnbridge::testing::random_graph(50, 4.0, 7);
  EXPECT_TRUE(validate_csr(g));
}

TEST(ValidateCsrTest, AcceptsEmptyGraph) {
  graph::Csr g;
  g.num_nodes = 0;
  g.row_ptr = {0};
  EXPECT_TRUE(validate_csr(g));
}

TEST(ValidateCsrTest, RejectsNegativeNodeCount) {
  graph::Csr g;
  g.num_nodes = -3;
  const Status s = validate_csr(g);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("negative node count"), std::string::npos);
}

TEST(ValidateCsrTest, RejectsWrongRowPtrLength) {
  graph::Csr g = gnnbridge::testing::random_graph(10, 3.0, 1);
  g.row_ptr.pop_back();
  const Status s = validate_csr(g);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("row_ptr"), std::string::npos);
}

TEST(ValidateCsrTest, RejectsNonZeroOrigin) {
  graph::Csr g = gnnbridge::testing::random_graph(10, 3.0, 2);
  g.row_ptr[0] = 1;
  EXPECT_EQ(validate_csr(g).code(), StatusCode::kFailedPrecondition);
}

TEST(ValidateCsrTest, RejectsNonMonotoneRowPtr) {
  graph::Csr g = gnnbridge::testing::random_graph(10, 3.0, 3);
  ASSERT_GE(g.row_ptr.size(), 3u);
  g.row_ptr[2] = g.row_ptr[1] + 1000000;  // later entries now look smaller
  const Status s = validate_csr(g);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("monotone"), std::string::npos);
}

TEST(ValidateCsrTest, RejectsEdgeCountMismatch) {
  graph::Csr g = gnnbridge::testing::random_graph(10, 3.0, 4);
  g.col_idx.push_back(0);  // one more edge than row_ptr accounts for
  const Status s = validate_csr(g);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("col_idx holds"), std::string::npos);
}

TEST(ValidateCsrTest, RejectsOutOfRangeColumn) {
  graph::Csr g = gnnbridge::testing::random_graph(10, 3.0, 5);
  ASSERT_FALSE(g.col_idx.empty());
  g.col_idx[0] = 10;  // == num_nodes, one past the last valid id
  const Status s = validate_csr(g);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("col_idx[0]"), std::string::npos);
}

TEST(ValidateMatrixTest, AcceptsFiniteMatrix) {
  const tensor::Matrix m = gnnbridge::testing::random_matrix(5, 7, 1);
  EXPECT_TRUE(validate_matrix(m));
}

TEST(ValidateMatrixTest, RejectsNaNWithPosition) {
  tensor::Matrix m = gnnbridge::testing::random_matrix(5, 7, 2);
  m(3, 4) = std::numeric_limits<float>::quiet_NaN();
  const Status s = validate_matrix(m, "features");
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("features has non-finite value at (3, 4)"),
            std::string::npos);
}

TEST(ValidateMatrixTest, RejectsInfinity) {
  tensor::Matrix m = gnnbridge::testing::random_matrix(2, 2, 3);
  m(0, 0) = std::numeric_limits<float>::infinity();
  EXPECT_EQ(validate_matrix(m).code(), StatusCode::kFailedPrecondition);
}

TEST(ValidateMatrixTest, NamesTheMatrixInTheMessage) {
  tensor::Matrix m = gnnbridge::testing::random_matrix(1, 1, 4);
  m(0, 0) = std::numeric_limits<float>::quiet_NaN();
  const Status s = validate_matrix(m, "weight[0]");
  EXPECT_NE(s.message().find("weight[0]"), std::string::npos);
}

}  // namespace
}  // namespace gnnbridge::rt
