// FaultInjector is a process-wide singleton; gtest_discover_tests runs
// every TEST in its own process, so arming a plan here cannot leak into
// other tests. Each test still clears the injector on entry for safety
// when the binary is run manually without a filter.
#include "rt/fault.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace gnnbridge::rt {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::instance().clear(); }
  void TearDown() override { FaultInjector::instance().clear(); }
};

TEST_F(FaultTest, KnownSeamsAreKnown) {
  for (std::string_view seam : kKnownSeams) EXPECT_TRUE(known_seam(seam));
  EXPECT_FALSE(known_seam("made_up_seam"));
  EXPECT_FALSE(known_seam(""));
}

TEST_F(FaultTest, UnarmedSeamNeverFires) {
  EXPECT_FALSE(FaultInjector::instance().armed(kSeamSimLaunch));
  EXPECT_FALSE(fire_fault(kSeamSimLaunch).has_value());
}

TEST_F(FaultTest, SingleShotFiresOnceThenPasses) {
  auto& inj = FaultInjector::instance();
  ASSERT_TRUE(inj.set_plan("las_cluster"));
  EXPECT_TRUE(inj.armed(kSeamLasCluster));
  const auto fault = inj.fire(kSeamLasCluster);
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->code(), StatusCode::kFaultInjected);
  EXPECT_NE(fault->message().find("las_cluster"), std::string::npos);
  // The shot is consumed.
  EXPECT_FALSE(inj.armed(kSeamLasCluster));
  EXPECT_FALSE(inj.fire(kSeamLasCluster).has_value());
}

TEST_F(FaultTest, CountedShotsDecrement) {
  auto& inj = FaultInjector::instance();
  ASSERT_TRUE(inj.set_plan("tuner_probe=3"));
  EXPECT_EQ(inj.plan_string(), "tuner_probe=3");
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(inj.fire(kSeamTunerProbe).has_value()) << "shot " << i;
  }
  EXPECT_FALSE(inj.fire(kSeamTunerProbe).has_value());
}

TEST_F(FaultTest, StarArmsForever) {
  auto& inj = FaultInjector::instance();
  ASSERT_TRUE(inj.set_plan("metrics_write=*"));
  EXPECT_EQ(inj.plan_string(), "metrics_write=*");
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(inj.fire(kSeamMetricsWrite).has_value());
  }
  EXPECT_TRUE(inj.armed(kSeamMetricsWrite));
}

TEST_F(FaultTest, MultiSeamPlansParse) {
  auto& inj = FaultInjector::instance();
  ASSERT_TRUE(inj.set_plan(" sim_launch = 2 , fusion_pass "));
  EXPECT_TRUE(inj.armed(kSeamSimLaunch));
  EXPECT_TRUE(inj.armed(kSeamFusionPass));
  EXPECT_EQ(inj.plan_string(), "fusion_pass,sim_launch=2");
}

TEST_F(FaultTest, BadPlansAreRejectedAndKeepThePreviousPlan) {
  auto& inj = FaultInjector::instance();
  ASSERT_TRUE(inj.set_plan("dataset_load"));
  const Status unknown = inj.set_plan("warp_drive");
  EXPECT_EQ(unknown.code(), StatusCode::kInvalidArgument);
  const Status bad_count = inj.set_plan("dataset_load=zero");
  EXPECT_EQ(bad_count.code(), StatusCode::kInvalidArgument);
  const Status negative = inj.set_plan("dataset_load=-1");
  EXPECT_EQ(negative.code(), StatusCode::kInvalidArgument);
  // The previous good plan survives the failed installs.
  EXPECT_TRUE(inj.armed(kSeamDatasetLoad));
}

TEST_F(FaultTest, BadPlanDiagnosticsNameEntryPositionAndOffendingText) {
  auto& inj = FaultInjector::instance();
  struct Row {
    std::string_view plan;
    std::string_view want_fragment;  // must appear in Status::message()
  };
  // The bad-input matrix: each malformed plan yields kInvalidArgument with
  // a message carrying the 1-based entry position, the offending entry
  // text, and (for unknown seams) the list of valid seams.
  const Row kBadPlans[] = {
      {"=5", "fault plan entry 1 ('=5'): empty seam name"},
      {"sim_launch,=3", "fault plan entry 2 ('=3'): empty seam name"},
      {"warp_drive", "fault plan entry 1 ('warp_drive'): unknown seam 'warp_drive'"},
      {"sim_launch,warp_drive=2",
       "fault plan entry 2 ('warp_drive=2'): unknown seam 'warp_drive'"},
      {"dataset_load=zero",
       "fault plan entry 1 ('dataset_load=zero'): bad count 'zero'"},
      {"dataset_load=-1", "bad count '-1'"},
      {"dataset_load=0", "bad count '0'"},
      {"dataset_load=1000001", "bad count '1000001'"},
      {"dataset_load=3x", "bad count '3x'"},
      {"dataset_load=", "bad count ''"},
      {"dataset_load=**", "bad count '**'"},
      // Empty entries are skipped but still counted: "b" below is entry 3.
      {"sim_launch,,warp_drive", "fault plan entry 3 ('warp_drive')"},
  };
  for (const Row& row : kBadPlans) {
    const Status s = inj.set_plan(row.plan);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << "plan: " << row.plan;
    EXPECT_NE(s.message().find(row.want_fragment), std::string::npos)
        << "plan: " << row.plan << "\nmessage: " << s.message();
  }
  // Unknown-seam diagnostics enumerate the valid seams.
  const Status unknown = inj.set_plan("warp_drive");
  EXPECT_NE(unknown.message().find("known: "), std::string::npos) << unknown.message();
  for (std::string_view seam : kKnownSeams) {
    EXPECT_NE(unknown.message().find(seam), std::string::npos)
        << "seam " << seam << " missing from: " << unknown.message();
  }
}

TEST_F(FaultTest, EmptyPlanDisarmsEverything) {
  auto& inj = FaultInjector::instance();
  ASSERT_TRUE(inj.set_plan("las_cluster=*,sim_launch"));
  ASSERT_TRUE(inj.set_plan(""));
  EXPECT_EQ(inj.plan_string(), "");
  for (std::string_view seam : kKnownSeams) EXPECT_FALSE(inj.armed(seam));
}

TEST_F(FaultTest, RaiseIfArmedThrowsStageFailure) {
  ASSERT_TRUE(FaultInjector::instance().set_plan("sim_launch"));
  try {
    raise_if_armed(kSeamSimLaunch, "unit test site");
    FAIL() << "expected StageFailure";
  } catch (const StageFailure& f) {
    EXPECT_EQ(f.seam(), "sim_launch");
    EXPECT_EQ(f.status().code(), StatusCode::kFaultInjected);
    ASSERT_FALSE(f.status().context().empty());
    EXPECT_EQ(f.status().context()[0], "unit test site");
  }
  // Disarmed after the single shot: no throw.
  raise_if_armed(kSeamSimLaunch, "unit test site");
}

TEST_F(FaultTest, SeamTableCoversEveryKnownSeam) {
  ASSERT_EQ(kSeamTable.size(), kKnownSeams.size());
  for (std::string_view seam : kKnownSeams) {
    EXPECT_FALSE(seam_description(seam).empty()) << seam;
  }
  EXPECT_TRUE(seam_description("no_such_seam").empty());
  // Table order matches the canonical seam list (the CLI prints it as-is).
  for (std::size_t i = 0; i < kKnownSeams.size(); ++i) {
    EXPECT_EQ(kSeamTable[i].name, kKnownSeams[i]);
  }
}

TEST_F(FaultTest, FireListenerObservesEveryConsumedShot) {
  auto& inj = FaultInjector::instance();
  ASSERT_TRUE(inj.set_plan("shard_compute=2"));
  struct Seen {
    std::vector<std::pair<std::string, int>> shots;
  } seen;
  ScopedFireListener listen(
      [](void* ctx, std::string_view seam, int shot) {
        static_cast<Seen*>(ctx)->shots.emplace_back(std::string(seam), shot);
      },
      &seen);
  EXPECT_TRUE(inj.fire(kSeamShardCompute).has_value());
  EXPECT_TRUE(inj.fire(kSeamShardCompute).has_value());
  EXPECT_FALSE(inj.fire(kSeamShardCompute).has_value());  // spent: no callback
  ASSERT_EQ(seen.shots.size(), 2u);
  EXPECT_EQ(seen.shots[0], (std::pair<std::string, int>{"shard_compute", 0}));
  EXPECT_EQ(seen.shots[1], (std::pair<std::string, int>{"shard_compute", 1}));
}

}  // namespace
}  // namespace gnnbridge::rt
