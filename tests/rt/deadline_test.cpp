// Sim-time deadlines and cooperative cancellation (DESIGN.md §12): budgets
// charged in simulated cycles, expiry noticed at counted checkpoints, and
// external cancellation via a shared CancelToken.
#include "rt/deadline.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "rt/status.hpp"

namespace gnnbridge::rt {
namespace {

TEST(DeadlineTest, DefaultConstructedIsUnbounded) {
  EXPECT_FALSE(Deadline{}.bounded());
  EXPECT_FALSE(Deadline::unbounded().bounded());
  EXPECT_TRUE(Deadline::cycles(1.0).bounded());
}

TEST(CancelScopeTest, NoScopeMeansEveryQueryIsBenign) {
  charge_sim_cycles(1e18);  // no-op without a scope
  EXPECT_FALSE(scope_cancelled());
  EXPECT_TRUE(scope_status().ok());
  EXPECT_TRUE(cancel_checkpoint().ok());
  EXPECT_NO_THROW(throw_if_cancelled("nowhere"));
}

TEST(CancelScopeTest, ChargingPastTheBudgetExpiresAtTheNextCheckpoint) {
  CancelScope scope(Deadline::cycles(100.0));
  EXPECT_TRUE(cancel_checkpoint().ok());
  charge_sim_cycles(100.0);  // exactly at the budget: the job may finish
  EXPECT_TRUE(cancel_checkpoint().ok());
  charge_sim_cycles(1.0);  // crossing it expires the scope
  const Status s = cancel_checkpoint();
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(scope_cancelled());
  EXPECT_DOUBLE_EQ(scope.charged_cycles(), 101.0);
}

TEST(CancelScopeTest, CountsCountingCheckpointsOnly) {
  CancelScope scope(Deadline::cycles(1e9));
  (void)scope_cancelled();  // fast-path queries are not checkpoints
  (void)scope_status();
  EXPECT_EQ(scope.checkpoints(), 0u);
  (void)cancel_checkpoint();
  throw_if_cancelled("here");
  EXPECT_EQ(scope.checkpoints(), 2u);
}

TEST(CancelScopeTest, ThrowIfCancelledCarriesStageAndContext) {
  CancelScope scope(Deadline::cycles(1.0));
  charge_sim_cycles(2.0);
  try {
    throw_if_cancelled("SimContext::launch('gemm')");
    FAIL() << "expected StageFailure";
  } catch (const StageFailure& failure) {
    EXPECT_EQ(failure.seam(), kDeadlineStage);
    EXPECT_EQ(failure.status().code(), StatusCode::kDeadlineExceeded);
    ASSERT_EQ(failure.status().context().size(), 1u);
    EXPECT_EQ(failure.status().context()[0], "SimContext::launch('gemm')");
  }
}

TEST(CancelScopeTest, TokenCancelSurfacesItsReason) {
  CancelToken token;
  CancelScope scope(Deadline::unbounded(), &token);
  EXPECT_TRUE(cancel_checkpoint().ok());
  token.cancel(Status(StatusCode::kCancelled, "shed load"));
  const Status s = cancel_checkpoint();
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_EQ(s.message(), "shed load");
  // First cancel wins; a second reason is ignored.
  token.cancel(Status(StatusCode::kCancelled, "other"));
  EXPECT_EQ(token.reason().message(), "shed load");
}

TEST(CancelScopeTest, ScopesNestAndRestore) {
  CancelScope outer(Deadline::cycles(10.0));
  charge_sim_cycles(4.0);
  {
    CancelScope inner(Deadline::cycles(2.0));
    charge_sim_cycles(3.0);  // only the inner scope expires
    EXPECT_EQ(cancel_checkpoint().code(), StatusCode::kDeadlineExceeded);
    EXPECT_DOUBLE_EQ(inner.charged_cycles(), 3.0);
  }
  EXPECT_TRUE(cancel_checkpoint().ok());  // outer again: 4 of 10 spent
  EXPECT_DOUBLE_EQ(outer.charged_cycles(), 4.0);
}

TEST(CancelScopeTest, AdoptedScopeIsVisibleOnAnotherThread) {
  CancelToken token;
  CancelScope scope(Deadline::unbounded(), &token);
  const ScopeHandle handle = current_scope();
  token.cancel();
  bool seen = false;
  Status status;
  std::thread worker([&] {
    EXPECT_FALSE(scope_cancelled());  // worker has no scope of its own
    AdoptScope adopt(handle);
    seen = scope_cancelled();
    status = scope_status();
  });
  worker.join();
  EXPECT_TRUE(seen);
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
}

TEST(CancelScopeTest, NullHandleAdoptsNoScope) {
  CancelScope scope(Deadline::cycles(1.0));
  charge_sim_cycles(2.0);
  EXPECT_TRUE(scope_cancelled());
  {
    AdoptScope neutral{ScopeHandle{}};
    EXPECT_FALSE(scope_cancelled());  // engine-internal work runs unscoped
    charge_sim_cycles(1e9);           // and charges nothing
  }
  EXPECT_TRUE(scope_cancelled());
  EXPECT_DOUBLE_EQ(scope.charged_cycles(), 2.0);
}

}  // namespace
}  // namespace gnnbridge::rt
