#include "rt/status.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>

namespace gnnbridge::rt {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s(StatusCode::kDataLoss, "truncated payload");
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(static_cast<bool>(s));
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.message(), "truncated payload");
  EXPECT_EQ(s.to_string(), "DATA_LOSS: truncated payload");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(status_code_name(StatusCode::kOk), "OK");
  EXPECT_EQ(status_code_name(StatusCode::kInvalidArgument), "INVALID_ARGUMENT");
  EXPECT_EQ(status_code_name(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_EQ(status_code_name(StatusCode::kDataLoss), "DATA_LOSS");
  EXPECT_EQ(status_code_name(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_EQ(status_code_name(StatusCode::kFailedPrecondition), "FAILED_PRECONDITION");
  EXPECT_EQ(status_code_name(StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_EQ(status_code_name(StatusCode::kInternal), "INTERNAL");
  EXPECT_EQ(status_code_name(StatusCode::kFaultInjected), "FAULT_INJECTED");
  EXPECT_EQ(status_code_name(StatusCode::kDeadlineExceeded), "DEADLINE_EXCEEDED");
  EXPECT_EQ(status_code_name(StatusCode::kCancelled), "CANCELLED");
  EXPECT_EQ(status_code_name(StatusCode::kResourceExhausted), "RESOURCE_EXHAUSTED");
}

TEST(StatusTest, ContextChainRendersInnermostFirst) {
  const Status s = Status(StatusCode::kDataLoss, "truncated payload")
                       .with_context("read_vec")
                       .with_context("load_csr('g.csr')");
  ASSERT_EQ(s.context().size(), 2u);
  EXPECT_EQ(s.context()[0], "read_vec");
  EXPECT_EQ(s.context()[1], "load_csr('g.csr')");
  EXPECT_EQ(s.to_string(),
            "DATA_LOSS: truncated payload (in read_vec <- load_csr('g.csr'))");
}

TEST(StatusTest, ContextOnLvalueChains) {
  Status s(StatusCode::kUnavailable, "io failed");
  s.with_context("inner").with_context("outer");
  ASSERT_EQ(s.context().size(), 2u);
  EXPECT_EQ(s.context()[0], "inner");
}

TEST(StatusTest, ContextIsNoOpOnOk) {
  Status s;
  s.with_context("should not appear");
  EXPECT_TRUE(s.context().empty());
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, EqualityIgnoresContext) {
  const Status a = Status(StatusCode::kNotFound, "gone").with_context("here");
  const Status b(StatusCode::kNotFound, "gone");
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == Status(StatusCode::kNotFound, "different"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  const Result<int> r(Status(StatusCode::kNotFound, "no such dataset"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "no such dataset");
}

TEST(ResultTest, MoveExtractsValue) {
  Result<std::string> r(std::string("payload"));
  const std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status fails_inner() { return Status(StatusCode::kInternal, "inner broke"); }

Status propagates() {
  GNNBRIDGE_RETURN_IF_ERROR(fails_inner());
  ADD_FAILURE() << "must not reach past a failed RETURN_IF_ERROR";
  return OkStatus();
}

Status passes_through() {
  GNNBRIDGE_RETURN_IF_ERROR(OkStatus());
  return Status(StatusCode::kUnavailable, "reached the end");
}

TEST(ReturnIfErrorTest, PropagatesErrorAndStopsOnOk) {
  EXPECT_EQ(propagates().code(), StatusCode::kInternal);
  EXPECT_EQ(passes_through().code(), StatusCode::kUnavailable);
}

TEST(StageFailureTest, CarriesSeamAndRenderedStatus) {
  const StageFailure f("sim_launch",
                       Status(StatusCode::kFaultInjected, "injected fault"));
  EXPECT_EQ(f.seam(), "sim_launch");
  EXPECT_EQ(f.status().code(), StatusCode::kFaultInjected);
  EXPECT_STREQ(f.what(), "FAULT_INJECTED: injected fault");
}

}  // namespace
}  // namespace gnnbridge::rt
