// Retryability classification table (every StatusCode, asserted one by
// one) and the deterministic sim-time backoff. The classification switch
// itself is exhaustive at compile time (-Wswitch under -Werror); this
// table pins the *decisions* so reclassifying a code is a visible diff.
#include "rt/retry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "rt/status.hpp"

namespace gnnbridge::rt {
namespace {

struct Row {
  StatusCode code;
  RetryClass want;
};

// One row per StatusCode enumerator, in enum order.
constexpr Row kTable[] = {
    {StatusCode::kOk, RetryClass::kFatal},
    {StatusCode::kInvalidArgument, RetryClass::kFatal},
    {StatusCode::kNotFound, RetryClass::kFatal},
    {StatusCode::kDataLoss, RetryClass::kFatal},
    {StatusCode::kOutOfRange, RetryClass::kFatal},
    {StatusCode::kFailedPrecondition, RetryClass::kFatal},
    {StatusCode::kUnavailable, RetryClass::kRetryable},
    {StatusCode::kInternal, RetryClass::kFatal},
    {StatusCode::kFaultInjected, RetryClass::kRetryable},
    {StatusCode::kDeadlineExceeded, RetryClass::kFatal},
    {StatusCode::kCancelled, RetryClass::kFatal},
    {StatusCode::kResourceExhausted, RetryClass::kRetryable},
};

// The classification is constexpr: usable in static dispatch decisions.
static_assert(classify_for_retry(StatusCode::kUnavailable) == RetryClass::kRetryable);
static_assert(classify_for_retry(StatusCode::kDeadlineExceeded) == RetryClass::kFatal);

TEST(RetryClassificationTest, EveryCodeIsClassifiedAsExpected) {
  for (const Row& row : kTable) {
    EXPECT_EQ(classify_for_retry(row.code), row.want)
        << "code " << status_code_name(row.code);
  }
}

TEST(RetryClassificationTest, RetryableMatchesTheTable) {
  for (const Row& row : kTable) {
    if (row.code == StatusCode::kOk) continue;  // ok Status carries no code to retry
    const Status status(row.code, "x");
    EXPECT_EQ(retryable(status), row.want == RetryClass::kRetryable)
        << "code " << status_code_name(row.code);
  }
  EXPECT_FALSE(retryable(OkStatus()));
}

TEST(RetryClassificationTest, TerminalResilienceCodesNeverRetry) {
  // The two codes the resilience layer itself produces must be fatal:
  // retrying after the budget is spent (or the caller cancelled) would
  // make deadlines advisory.
  EXPECT_EQ(classify_for_retry(StatusCode::kDeadlineExceeded), RetryClass::kFatal);
  EXPECT_EQ(classify_for_retry(StatusCode::kCancelled), RetryClass::kFatal);
}

TEST(BackoffTest, PureFunctionOfPolicyAndAttempt) {
  const RetryPolicy policy;
  for (int attempt = 1; attempt <= 10; ++attempt) {
    EXPECT_EQ(backoff_cycles(policy, attempt), backoff_cycles(policy, attempt))
        << "attempt " << attempt;
  }
}

TEST(BackoffTest, ExponentialWithJitterInHalfToFullBand) {
  const RetryPolicy policy;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    const double uncapped =
        policy.base_backoff_cycles * std::pow(policy.backoff_multiplier, attempt - 1);
    const double expected = std::min(uncapped, policy.max_backoff_cycles);
    const double got = backoff_cycles(policy, attempt);
    EXPECT_GE(got, 0.5 * expected) << "attempt " << attempt;
    EXPECT_LT(got, expected) << "attempt " << attempt;
  }
}

TEST(BackoffTest, CapBoundsLateAttempts) {
  const RetryPolicy policy;
  for (int attempt = 1; attempt <= 40; ++attempt) {
    EXPECT_LE(backoff_cycles(policy, attempt), policy.max_backoff_cycles);
    EXPECT_GT(backoff_cycles(policy, attempt), 0.0);
  }
}

TEST(BackoffTest, SeedChangesJitterOnly) {
  RetryPolicy a;
  RetryPolicy b;
  b.seed = a.seed + 1;
  // Different seeds give a different (deterministic) jitter sequence, but
  // both stay inside the same exponential band.
  bool any_different = false;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    if (backoff_cycles(a, attempt) != backoff_cycles(b, attempt)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace gnnbridge::rt
