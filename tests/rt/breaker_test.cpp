// Per-key circuit breaker state machine (DESIGN.md §12): trip on K
// consecutive closed failures, degraded open admissions at the
// last-known-good rung, half-open probes on a fixed admission schedule.
#include "rt/breaker.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace gnnbridge::rt {
namespace {

const std::string kKey = "gcn/deadbeef";

// Drives `breaker` through `n` closed-state failures ending at `rung`.
void fail_closed(CircuitBreaker& breaker, int n, std::vector<std::string> rung) {
  for (int i = 0; i < n; ++i) {
    const BreakerDecision d = breaker.admit(kKey);
    ASSERT_EQ(d.state, BreakerState::kClosed);
    breaker.record(kKey, d, /*success=*/false, rung);
  }
}

TEST(CircuitBreakerTest, StaysClosedBelowTheFailureThreshold) {
  CircuitBreaker breaker(BreakerConfig{.failure_threshold = 3, .probe_interval = 4});
  fail_closed(breaker, 2, {"las"});
  EXPECT_EQ(breaker.state(kKey), BreakerState::kClosed);
  EXPECT_EQ(breaker.counters().trips, 0u);
  // Closed admissions carry no pre-disabled knobs.
  const BreakerDecision d = breaker.admit(kKey);
  EXPECT_EQ(d.state, BreakerState::kClosed);
  EXPECT_FALSE(d.probe);
  EXPECT_TRUE(d.disabled_knobs.empty());
}

TEST(CircuitBreakerTest, TripsOnTheKthConsecutiveFailure) {
  CircuitBreaker breaker(BreakerConfig{.failure_threshold = 3, .probe_interval = 4});
  fail_closed(breaker, 2, {"las"});
  const BreakerDecision d = breaker.admit(kKey);
  const auto effect = breaker.record(kKey, d, /*success=*/false, {"las"});
  EXPECT_TRUE(effect.tripped);
  EXPECT_FALSE(effect.recovered);
  EXPECT_EQ(breaker.state(kKey), BreakerState::kOpen);
  EXPECT_EQ(breaker.counters().trips, 1u);
}

TEST(CircuitBreakerTest, ClosedSuccessResetsTheFailureStreak) {
  CircuitBreaker breaker(BreakerConfig{.failure_threshold = 3, .probe_interval = 4});
  fail_closed(breaker, 2, {"las"});
  const BreakerDecision ok = breaker.admit(kKey);
  breaker.record(kKey, ok, /*success=*/true, {});
  fail_closed(breaker, 2, {"las"});  // streak restarted: still below K
  EXPECT_EQ(breaker.state(kKey), BreakerState::kClosed);
  EXPECT_EQ(breaker.counters().trips, 0u);
}

TEST(CircuitBreakerTest, OpenAdmissionsCarryTheLastKnownGoodRung) {
  CircuitBreaker breaker(BreakerConfig{.failure_threshold = 2, .probe_interval = 4});
  // Rungs merge across the failing attempts: the open-state rung is the
  // union of every knob the failing jobs ended up disabling.
  {
    const BreakerDecision d = breaker.admit(kKey);
    breaker.record(kKey, d, false, {"las"});
  }
  {
    const BreakerDecision d = breaker.admit(kKey);
    breaker.record(kKey, d, false, {"las", "auto_tune"});
  }
  ASSERT_EQ(breaker.state(kKey), BreakerState::kOpen);
  const BreakerDecision d = breaker.admit(kKey);
  EXPECT_EQ(d.state, BreakerState::kOpen);
  EXPECT_FALSE(d.probe);
  EXPECT_EQ(d.disabled_knobs, (std::vector<std::string>{"las", "auto_tune"}));
  EXPECT_EQ(breaker.counters().open_admissions, 1u);
}

TEST(CircuitBreakerTest, EveryNthOpenAdmissionIsAHalfOpenProbe) {
  CircuitBreaker breaker(BreakerConfig{.failure_threshold = 1, .probe_interval = 3});
  fail_closed(breaker, 1, {"las"});
  EXPECT_FALSE(breaker.admit(kKey).probe);  // open admission 1: degraded
  EXPECT_FALSE(breaker.admit(kKey).probe);  // open admission 2: degraded
  const BreakerDecision probe = breaker.admit(kKey);  // 3rd: probe
  EXPECT_TRUE(probe.probe);
  EXPECT_EQ(probe.state, BreakerState::kHalfOpen);
  EXPECT_TRUE(probe.disabled_knobs.empty());  // probes run at full optimization
  EXPECT_EQ(breaker.counters().half_open_probes, 1u);
  EXPECT_EQ(breaker.state(kKey), BreakerState::kHalfOpen);
}

TEST(CircuitBreakerTest, OnlyOneProbeInFlight) {
  CircuitBreaker breaker(BreakerConfig{.failure_threshold = 1, .probe_interval = 2});
  fail_closed(breaker, 1, {"las"});
  (void)breaker.admit(kKey);                          // open admission 1
  ASSERT_TRUE(breaker.admit(kKey).probe);             // 2nd: probe goes out
  // While the probe is unresolved, later admissions stay degraded even on
  // the probe schedule: half-open is still "not trusted".
  for (int i = 0; i < 4; ++i) {
    const BreakerDecision d = breaker.admit(kKey);
    EXPECT_FALSE(d.probe) << "admission " << i;
    EXPECT_EQ(d.disabled_knobs, (std::vector<std::string>{"las"}));
  }
  EXPECT_EQ(breaker.counters().half_open_probes, 1u);
}

TEST(CircuitBreakerTest, ProbeSuccessClosesTheBreaker) {
  CircuitBreaker breaker(BreakerConfig{.failure_threshold = 1, .probe_interval = 2});
  fail_closed(breaker, 1, {"las"});
  (void)breaker.admit(kKey);
  const BreakerDecision probe = breaker.admit(kKey);
  ASSERT_TRUE(probe.probe);
  const auto effect = breaker.record(kKey, probe, /*success=*/true, {});
  EXPECT_TRUE(effect.recovered);
  EXPECT_EQ(breaker.counters().recoveries, 1u);
  EXPECT_EQ(breaker.state(kKey), BreakerState::kClosed);
  // Fully reset: the next admission is a plain closed one.
  const BreakerDecision d = breaker.admit(kKey);
  EXPECT_EQ(d.state, BreakerState::kClosed);
  EXPECT_TRUE(d.disabled_knobs.empty());
}

TEST(CircuitBreakerTest, ProbeFailureReopensAndRestartsTheSchedule) {
  CircuitBreaker breaker(BreakerConfig{.failure_threshold = 1, .probe_interval = 3});
  fail_closed(breaker, 1, {"las"});
  (void)breaker.admit(kKey);
  (void)breaker.admit(kKey);
  const BreakerDecision probe = breaker.admit(kKey);
  ASSERT_TRUE(probe.probe);
  const auto effect = breaker.record(kKey, probe, /*success=*/false, {"las"});
  EXPECT_FALSE(effect.recovered);
  EXPECT_FALSE(effect.tripped);  // already open; a probe failure is not a new trip
  EXPECT_EQ(breaker.state(kKey), BreakerState::kOpen);
  // The probe schedule restarts from the failed probe.
  EXPECT_FALSE(breaker.admit(kKey).probe);
  EXPECT_FALSE(breaker.admit(kKey).probe);
  EXPECT_TRUE(breaker.admit(kKey).probe);
  EXPECT_EQ(breaker.counters().half_open_probes, 2u);
}

TEST(CircuitBreakerTest, DegradedOpenSuccessIsNotRecoveryEvidence) {
  CircuitBreaker breaker(BreakerConfig{.failure_threshold = 1, .probe_interval = 4});
  fail_closed(breaker, 1, {"las"});
  const BreakerDecision d = breaker.admit(kKey);
  ASSERT_FALSE(d.probe);
  const auto effect = breaker.record(kKey, d, /*success=*/true, {});
  EXPECT_FALSE(effect.recovered);
  EXPECT_EQ(breaker.state(kKey), BreakerState::kOpen);
  EXPECT_EQ(breaker.counters().recoveries, 0u);
}

TEST(CircuitBreakerTest, KeysAreIndependent) {
  CircuitBreaker breaker(BreakerConfig{.failure_threshold = 1, .probe_interval = 4});
  fail_closed(breaker, 1, {"las"});
  EXPECT_EQ(breaker.state(kKey), BreakerState::kOpen);
  EXPECT_EQ(breaker.state("gat/cafef00d"), BreakerState::kClosed);  // untouched key
  const BreakerDecision d = breaker.admit("gat/cafef00d");
  EXPECT_EQ(d.state, BreakerState::kClosed);
  EXPECT_EQ(breaker.size(), 2u);
}

TEST(CircuitBreakerTest, StateNamesAreStable) {
  EXPECT_EQ(breaker_state_name(BreakerState::kClosed), "closed");
  EXPECT_EQ(breaker_state_name(BreakerState::kOpen), "open");
  EXPECT_EQ(breaker_state_name(BreakerState::kHalfOpen), "half_open");
}

}  // namespace
}  // namespace gnnbridge::rt
