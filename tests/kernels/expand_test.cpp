#include "kernels/expand.hpp"

#include <gtest/gtest.h>

#include "models/layers.hpp"
#include "tests/testing/util.hpp"

namespace gnnbridge::kernels {
namespace {

using testing::random_matrix;

struct ExpandHarness {
  sim::SimContext ctx{sim::v100()};
  graph::Coo coo;
  graph::Csr csr;
  EdgeListOnDevice edev;
  GraphOnDevice gdev;

  explicit ExpandHarness(graph::NodeId n, double deg, std::uint64_t seed) {
    tensor::Rng rng(seed);
    coo = graph::erdos_renyi(n, deg, rng);
    csr = graph::csr_from_coo(coo);
    edev = device_edges(ctx, coo, "e");
    gdev = device_graph(ctx, csr, "g");
  }
};

TEST(Gather, BySrcCopiesSourceRows) {
  ExpandHarness h(30, 4.0, 1);
  Matrix feat_host = random_matrix(30, 6, 2);
  Matrix exp_host(h.coo.num_edges(), 6);
  auto feat = device_mat(h.ctx, feat_host, "feat");
  auto expanded = device_mat(h.ctx, exp_host, "exp");
  gather(h.ctx, {.edges = &h.edev, .by_src = true, .feat = &feat, .expanded = &expanded});
  for (graph::EdgeId e = 0; e < h.coo.num_edges(); ++e) {
    const graph::NodeId u = h.coo.src[static_cast<std::size_t>(e)];
    for (Index f = 0; f < 6; ++f) EXPECT_EQ(exp_host(e, f), feat_host(u, f));
  }
}

TEST(Gather, ByDstCopiesDestRows) {
  ExpandHarness h(25, 3.0, 3);
  Matrix feat_host = random_matrix(25, 1, 4);
  Matrix exp_host(h.coo.num_edges(), 1);
  auto feat = device_mat(h.ctx, feat_host, "feat");
  auto expanded = device_mat(h.ctx, exp_host, "exp");
  gather(h.ctx, {.edges = &h.edev, .by_src = false, .feat = &feat, .expanded = &expanded});
  for (graph::EdgeId e = 0; e < h.coo.num_edges(); ++e) {
    EXPECT_EQ(exp_host(e, 0), feat_host(h.coo.dst[static_cast<std::size_t>(e)], 0));
  }
}

TEST(Gather, BlockCountIsEdgeChunked) {
  ExpandHarness h(100, 6.0, 5);
  Matrix feat_host = random_matrix(100, 4, 6);
  Matrix exp_host(h.coo.num_edges(), 4);
  auto feat = device_mat(h.ctx, feat_host, "feat");
  auto expanded = device_mat(h.ctx, exp_host, "exp");
  const sim::KernelStats& ks =
      gather(h.ctx, {.edges = &h.edev, .by_src = true, .feat = &feat, .expanded = &expanded});
  const int expect = static_cast<int>((h.coo.num_edges() + kEdgeChunk - 1) / kEdgeChunk);
  EXPECT_EQ(ks.num_blocks, expect);
}

TEST(ScatterReduce, WeightedSumMatchesReference) {
  ExpandHarness h(40, 5.0, 7);
  Matrix feat_host = random_matrix(40, 8, 8);
  Matrix exp_host(h.coo.num_edges(), 8);
  Matrix ew_host = random_matrix(h.coo.num_edges(), 1, 9, 0.1f, 1.0f);
  Matrix out_host(40, 8);
  auto feat = device_mat(h.ctx, feat_host, "feat");
  auto expanded = device_mat(h.ctx, exp_host, "exp");
  auto ew = device_mat(h.ctx, ew_host, "ew");
  auto out = device_mat(h.ctx, out_host, "out");
  gather(h.ctx, {.edges = &h.edev, .by_src = true, .feat = &feat, .expanded = &expanded});
  scatter_reduce(h.ctx, {.edges = &h.edev, .expanded = &expanded, .edge_weight = &ew,
                         .out = &out});

  // Canonical COO and CSR share edge order, so the weights line up.
  const std::vector<float> w(ew_host.data(), ew_host.data() + ew_host.size());
  const Matrix expect = models::layer_sum(h.csr, feat_host, w);
  EXPECT_TRUE(tensor::allclose(out_host, expect, 1e-4f, 1e-5f));
}

TEST(ScatterReduce, MeanDividesByDegree) {
  ExpandHarness h(30, 4.0, 11);
  Matrix feat_host = random_matrix(30, 5, 12);
  Matrix exp_host(h.coo.num_edges(), 5);
  Matrix out_host(30, 5);
  auto feat = device_mat(h.ctx, feat_host, "feat");
  auto expanded = device_mat(h.ctx, exp_host, "exp");
  auto out = device_mat(h.ctx, out_host, "out");
  gather(h.ctx, {.edges = &h.edev, .by_src = true, .feat = &feat, .expanded = &expanded});
  scatter_reduce(h.ctx,
                 {.edges = &h.edev, .expanded = &expanded, .out = &out, .reduce = Reduce::kMean});
  const std::vector<float> ones(static_cast<std::size_t>(h.coo.num_edges()), 1.0f);
  const Matrix expect = models::layer_mean(h.csr, feat_host, ones);
  EXPECT_TRUE(tensor::allclose(out_host, expect));
}

TEST(ScatterReduce, MaxUntouchedRowsZero) {
  // A single edge 1 -> 0 leaves every other row untouched.
  graph::Coo coo;
  coo.num_nodes = 4;
  coo.add_edge(1, 0);
  coo = graph::canonicalize(coo);
  sim::SimContext ctx(sim::v100());
  auto edev = device_edges(ctx, coo, "e");
  Matrix feat_host = random_matrix(4, 3, 13);
  Matrix exp_host(1, 3);
  Matrix out_host(4, 3);
  auto feat = device_mat(ctx, feat_host, "feat");
  auto expanded = device_mat(ctx, exp_host, "exp");
  auto out = device_mat(ctx, out_host, "out");
  gather(ctx, {.edges = &edev, .by_src = true, .feat = &feat, .expanded = &expanded});
  scatter_reduce(ctx, {.edges = &edev, .expanded = &expanded, .out = &out,
                       .reduce = Reduce::kMax});
  for (Index f = 0; f < 3; ++f) {
    EXPECT_EQ(out_host(0, f), feat_host(1, f));
    EXPECT_EQ(out_host(2, f), 0.0f);
  }
}

TEST(StepGather, PicksTthNeighborWithWrap) {
  // Node 0 aggregates {1, 2}; step 5 -> index 5 % 2 = 1 -> neighbor 2.
  const graph::Csr csr = testing::csr_from_edges(3, {{0, 1}, {0, 2}});
  sim::SimContext ctx(sim::v100());
  auto gdev = device_graph(ctx, csr, "g");
  Matrix feat_host = random_matrix(3, 4, 14);
  Matrix out_host(3, 4);
  auto feat = device_mat(ctx, feat_host, "feat");
  auto out = device_mat(ctx, out_host, "out");
  step_gather(ctx, {.graph = &gdev, .step = 5, .feat = &feat, .out = &out});
  for (Index f = 0; f < 4; ++f) EXPECT_EQ(out_host(0, f), feat_host(2, f));
}

TEST(StepGather, IsolatedNodesSelfFallback) {
  const graph::Csr csr = testing::csr_from_edges(3, {{0, 1}});
  sim::SimContext ctx(sim::v100());
  auto gdev = device_graph(ctx, csr, "g");
  Matrix feat_host = random_matrix(3, 2, 15);
  Matrix out_host(3, 2);
  auto feat = device_mat(ctx, feat_host, "feat");
  auto out = device_mat(ctx, out_host, "out");
  step_gather(ctx, {.graph = &gdev, .step = 0, .feat = &feat, .out = &out});
  // Node 2 has no neighbors -> its own features.
  EXPECT_EQ(out_host(2, 0), feat_host(2, 0));
  EXPECT_EQ(out_host(2, 1), feat_host(2, 1));
}

TEST(ExpansionFootprint, GrowsWithEdgesTimesFeat) {
  // The Observation-4 memory cost: the [E, F] buffer dwarfs [N, F].
  ExpandHarness h(50, 10.0, 16);
  sim::SimContext& ctx = h.ctx;
  const auto before = ctx.mem().total_allocated();
  device_mat_shape(ctx, h.coo.num_edges(), 128, "expansion");
  const auto after = ctx.mem().total_allocated();
  EXPECT_EQ(after - before, static_cast<std::uint64_t>(h.coo.num_edges()) * 128 * 4);
}

}  // namespace
}  // namespace gnnbridge::kernels
