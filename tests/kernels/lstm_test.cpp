#include "kernels/lstm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "models/lstm.hpp"
#include "tensor/ops.hpp"
#include "tests/testing/util.hpp"

namespace gnnbridge::kernels {
namespace {

using testing::random_matrix;

TEST(LstmPointwise, MatchesReferenceGateMath) {
  const Index n = 12, hidden = 8;
  sim::SimContext ctx(sim::v100());
  Matrix gates_host = random_matrix(n, 4 * hidden, 1);
  Matrix bias_host = random_matrix(4 * hidden, 1, 2, -0.1f, 0.1f);
  Matrix c_host = random_matrix(n, hidden, 3);
  Matrix h_host(n, hidden);

  // Reference: add bias to gates, then apply the shared gate math.
  Matrix gates_biased = gates_host;
  for (Index r = 0; r < n; ++r) {
    auto row = gates_biased.row(r);
    for (Index j = 0; j < 4 * hidden; ++j) row[j] += bias_host(j, 0);
  }
  models::LstmState ref_state{Matrix(n, hidden), c_host};
  models::lstm_apply_gates(gates_biased, ref_state);

  auto gates = device_mat(ctx, gates_host, "g");
  auto bias = device_mat(ctx, bias_host, "b");
  auto c = device_mat(ctx, c_host, "c");
  auto h = device_mat(ctx, h_host, "h");
  lstm_pointwise(ctx, {.gates = &gates, .bias = &bias, .c = &c, .h = &h});

  EXPECT_TRUE(tensor::allclose(h_host, ref_state.h, 1e-5f, 1e-6f));
  EXPECT_TRUE(tensor::allclose(c_host, ref_state.c, 1e-5f, 1e-6f));
}

TEST(LstmPointwise, NullBiasMeansZeroBias) {
  const Index n = 5, hidden = 4;
  sim::SimContext ctx(sim::v100());
  Matrix gates_host = random_matrix(n, 4 * hidden, 4);
  Matrix c_host(n, hidden);
  Matrix h_host(n, hidden);
  auto gates = device_mat(ctx, gates_host, "g");
  auto c = device_mat(ctx, c_host, "c");
  auto h = device_mat(ctx, h_host, "h");
  lstm_pointwise(ctx, {.gates = &gates, .bias = nullptr, .c = &c, .h = &h});

  models::LstmState ref_state{Matrix(n, hidden), Matrix(n, hidden)};
  models::lstm_apply_gates(gates_host, ref_state);
  EXPECT_TRUE(tensor::allclose(h_host, ref_state.h, 1e-5f, 1e-6f));
}

TEST(LstmPointwise, StateEvolvesAcrossSteps) {
  const Index n = 3, hidden = 4;
  sim::SimContext ctx(sim::v100());
  Matrix gates_host = random_matrix(n, 4 * hidden, 5);
  Matrix c_host(n, hidden);
  Matrix h_host(n, hidden);
  auto gates = device_mat(ctx, gates_host, "g");
  auto c = device_mat(ctx, c_host, "c");
  auto h = device_mat(ctx, h_host, "h");
  lstm_pointwise(ctx, {.gates = &gates, .bias = nullptr, .c = &c, .h = &h});
  const Matrix h1 = h_host;
  lstm_pointwise(ctx, {.gates = &gates, .bias = nullptr, .c = &c, .h = &h});
  EXPECT_GT(tensor::max_abs_diff(h1, h_host), 0.0f);
}

TEST(LstmPointwise, HiddenStateBounded) {
  // h = o * tanh(c) is always in (-1, 1).
  const Index n = 20, hidden = 16;
  sim::SimContext ctx(sim::v100());
  Matrix gates_host = random_matrix(n, 4 * hidden, 6, -5.0f, 5.0f);
  Matrix c_host = random_matrix(n, hidden, 7, -2.0f, 2.0f);
  Matrix h_host(n, hidden);
  auto gates = device_mat(ctx, gates_host, "g");
  auto c = device_mat(ctx, c_host, "c");
  auto h = device_mat(ctx, h_host, "h");
  lstm_pointwise(ctx, {.gates = &gates, .bias = nullptr, .c = &c, .h = &h});
  for (Index i = 0; i < h_host.size(); ++i) {
    EXPECT_LT(std::fabs(h_host.data()[i]), 1.0f);
  }
}

}  // namespace
}  // namespace gnnbridge::kernels
