#include "kernels/sddmm.hpp"

#include <gtest/gtest.h>

#include "models/layers.hpp"
#include "tensor/ops.hpp"
#include "tests/testing/util.hpp"

namespace gnnbridge::kernels {
namespace {

using testing::random_graph;
using testing::random_matrix;

TEST(UAddV, MatchesPerEdgeSum) {
  const graph::Csr csr = random_graph(40, 5.0, 1);
  sim::SimContext ctx(sim::v100());
  auto gdev = device_graph(ctx, csr, "g");
  Matrix src_host = random_matrix(40, 1, 2);
  Matrix dst_host = random_matrix(40, 1, 3);
  Matrix e_host(csr.num_edges(), 1);
  auto src = device_mat(ctx, src_host, "src");
  auto dst = device_mat(ctx, dst_host, "dst");
  auto e = device_mat(ctx, e_host, "e");
  const auto tasks = natural_tasks(csr);
  u_add_v(ctx, {.graph = &gdev, .tasks = tasks, .src_scalar = &src, .dst_scalar = &dst,
                .edge_out = &e});
  for (graph::NodeId v = 0; v < csr.num_nodes; ++v) {
    for (graph::EdgeId idx = csr.row_ptr[v]; idx < csr.row_ptr[static_cast<std::size_t>(v) + 1];
         ++idx) {
      const graph::NodeId u = csr.col_idx[static_cast<std::size_t>(idx)];
      EXPECT_FLOAT_EQ(e_host(idx, 0), src_host(u, 0) + dst_host(v, 0));
    }
  }
}

TEST(UAddV, SplitTasksCoverAllEdges) {
  const graph::Csr csr = testing::star_graph(20);
  sim::SimContext ctx(sim::v100());
  auto gdev = device_graph(ctx, csr, "g");
  Matrix src_host = random_matrix(20, 1, 4);
  Matrix dst_host = random_matrix(20, 1, 5);
  Matrix e_host(csr.num_edges(), 1);
  e_host.fill(-99.0f);
  auto src = device_mat(ctx, src_host, "src");
  auto dst = device_mat(ctx, dst_host, "dst");
  auto e = device_mat(ctx, e_host, "e");
  // Split node 0's 19 edges into tasks of <= 4.
  std::vector<Task> tasks;
  for (graph::EdgeId b = 0; b < csr.num_edges(); b += 4) {
    tasks.push_back({0, b, std::min<graph::EdgeId>(b + 4, csr.num_edges())});
  }
  u_add_v(ctx, {.graph = &gdev, .tasks = tasks, .src_scalar = &src, .dst_scalar = &dst,
                .edge_out = &e});
  for (graph::EdgeId idx = 0; idx < csr.num_edges(); ++idx) {
    EXPECT_NE(e_host(idx, 0), -99.0f) << idx;
  }
}

TEST(UDotV, MatchesCosineEdgeOp) {
  const graph::Csr csr = random_graph(30, 4.0, 7);
  sim::SimContext ctx(sim::v100());
  auto gdev = device_graph(ctx, csr, "g");
  Matrix left_host = random_matrix(30, 8, 8);
  Matrix right_host = random_matrix(30, 8, 9);
  Matrix e_host(csr.num_edges(), 1);
  auto left = device_mat(ctx, left_host, "l");
  auto right = device_mat(ctx, right_host, "r");
  auto e = device_mat(ctx, e_host, "e");
  const auto tasks = natural_tasks(csr);
  u_dot_v(ctx, {.graph = &gdev, .tasks = tasks, .src_feat = &left, .dst_feat = &right,
                .edge_out = &e});
  const std::vector<float> expect = models::edge_cos(csr, left_host, right_host);
  for (graph::EdgeId i = 0; i < csr.num_edges(); ++i) {
    EXPECT_NEAR(e_host(i, 0), expect[static_cast<std::size_t>(i)], 1e-4f);
  }
}

TEST(UDotV, FlopsCountTwoPerElement) {
  const graph::Csr csr = testing::star_graph(5);  // 4 edges
  sim::SimContext ctx(sim::v100());
  auto gdev = device_graph(ctx, csr, "g");
  Matrix l_host = random_matrix(5, 16, 10);
  Matrix r_host = random_matrix(5, 16, 11);
  Matrix e_host(4, 1);
  auto l = device_mat(ctx, l_host, "l");
  auto r = device_mat(ctx, r_host, "r");
  auto e = device_mat(ctx, e_host, "e");
  const auto tasks = natural_tasks(csr);
  const sim::KernelStats& ks = u_dot_v(
      ctx, {.graph = &gdev, .tasks = tasks, .src_feat = &l, .dst_feat = &r, .edge_out = &e});
  EXPECT_DOUBLE_EQ(ks.flops, 2.0 * 16 * 4);
}

}  // namespace
}  // namespace gnnbridge::kernels
