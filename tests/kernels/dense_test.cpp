#include "kernels/dense.hpp"

#include <gtest/gtest.h>

#include "tensor/ops.hpp"
#include "tests/testing/util.hpp"

namespace gnnbridge::kernels {
namespace {

using testing::random_matrix;

struct DenseHarness {
  sim::SimContext ctx{sim::v100()};
};

TEST(DenseGemm, MatchesHostGemm) {
  DenseHarness h;
  Matrix a_host = random_matrix(70, 33, 1);
  Matrix b_host = random_matrix(33, 65, 2);
  Matrix c_host(70, 65);
  auto a = device_mat(h.ctx, a_host, "a");
  auto b = device_mat(h.ctx, b_host, "b");
  auto c = device_mat(h.ctx, c_host, "c");
  dense_gemm(h.ctx, {.a = &a, .b = &b, .c = &c});
  EXPECT_TRUE(tensor::allclose(c_host, tensor::gemm_ref(a_host, b_host), 1e-3f, 1e-4f));
}

TEST(DenseGemm, AccumulateAddsToC) {
  DenseHarness h;
  Matrix a_host = random_matrix(10, 10, 3);
  Matrix b_host = random_matrix(10, 10, 4);
  Matrix c_host(10, 10);
  c_host.fill(1.0f);
  auto a = device_mat(h.ctx, a_host, "a");
  auto b = device_mat(h.ctx, b_host, "b");
  auto c = device_mat(h.ctx, c_host, "c");
  dense_gemm(h.ctx, {.a = &a, .b = &b, .c = &c, .accumulate = true});
  Matrix expect = tensor::gemm_ref(a_host, b_host);
  for (Index i = 0; i < expect.size(); ++i) expect.data()[i] += 1.0f;
  EXPECT_TRUE(tensor::allclose(c_host, expect, 1e-3f, 1e-4f));
}

TEST(DenseGemm, BlockCountIsTileGrid) {
  DenseHarness h;
  Matrix a_host(130, 64), b_host(64, 65), c_host(130, 65);
  auto a = device_mat(h.ctx, a_host, "a");
  auto b = device_mat(h.ctx, b_host, "b");
  auto c = device_mat(h.ctx, c_host, "c");
  const sim::KernelStats& ks = dense_gemm(h.ctx, {.a = &a, .b = &b, .c = &c});
  EXPECT_EQ(ks.num_blocks, 5 * 3);  // ceil(130/32) x ceil(65/32)
}

TEST(DenseGemm, FlopsAreTwoMNK) {
  DenseHarness h;
  Matrix a_host(32, 16), b_host(16, 8), c_host(32, 8);
  auto a = device_mat(h.ctx, a_host, "a");
  auto b = device_mat(h.ctx, b_host, "b");
  auto c = device_mat(h.ctx, c_host, "c");
  const sim::KernelStats& ks = dense_gemm(h.ctx, {.a = &a, .b = &b, .c = &c});
  EXPECT_DOUBLE_EQ(ks.flops, 2.0 * 32 * 16 * 8);
}

TEST(SparseFetchGemm, MatchesGatherThenGemm) {
  DenseHarness h;
  Matrix feat_host = random_matrix(50, 12, 5);
  Matrix b_host = random_matrix(12, 9, 6);
  std::vector<graph::NodeId> index = {3, 3, 7, 49, 0, 21, 11, 7};
  Matrix c_host(static_cast<Index>(index.size()), 9);
  auto feat = device_mat(h.ctx, feat_host, "feat");
  auto b = device_mat(h.ctx, b_host, "b");
  auto c = device_mat(h.ctx, c_host, "c");
  auto idx_buf = h.ctx.mem().alloc("idx", index.size() * 4);
  sparse_fetch_gemm(h.ctx, {.feat = &feat, .row_index = index, .index_buf = idx_buf, .b = &b,
                            .c = &c});

  Matrix gathered(static_cast<Index>(index.size()), 12);
  for (std::size_t i = 0; i < index.size(); ++i) {
    auto src = feat_host.row(index[i]);
    auto dst = gathered.row(static_cast<Index>(i));
    std::copy(src.begin(), src.end(), dst.begin());
  }
  EXPECT_TRUE(tensor::allclose(c_host, tensor::gemm_ref(gathered, b_host), 1e-3f, 1e-4f));
}

TEST(SparseFetchGemm, NoExpansionBufferAllocated) {
  // The point of sparse fetching: no [M, K] intermediate exists.
  DenseHarness h;
  Matrix feat_host = random_matrix(100, 32, 7);
  Matrix b_host = random_matrix(32, 16, 8);
  std::vector<graph::NodeId> index(200, 5);
  Matrix c_host(200, 16);
  auto feat = device_mat(h.ctx, feat_host, "feat");
  auto b = device_mat(h.ctx, b_host, "b");
  auto c = device_mat(h.ctx, c_host, "c");
  auto idx_buf = h.ctx.mem().alloc("idx", index.size() * 4);
  const std::uint64_t before = h.ctx.mem().total_allocated();
  sparse_fetch_gemm(h.ctx, {.feat = &feat, .row_index = index, .index_buf = idx_buf, .b = &b,
                            .c = &c});
  EXPECT_EQ(h.ctx.mem().total_allocated(), before);
}

TEST(DenseMap, AppliesElementwise) {
  DenseHarness h;
  Matrix in_host = random_matrix(20, 7, 9);
  Matrix out_host(20, 7);
  auto in = device_mat(h.ctx, in_host, "in");
  auto out = device_mat(h.ctx, out_host, "out");
  dense_map(h.ctx, {.in = &in, .out = &out, .fn = [](float x) { return x * x; }});
  for (Index r = 0; r < 20; ++r) {
    for (Index c = 0; c < 7; ++c) EXPECT_FLOAT_EQ(out_host(r, c), in_host(r, c) * in_host(r, c));
  }
}

TEST(DenseBinary, CombinesElementwise) {
  DenseHarness h;
  Matrix a_host = random_matrix(15, 6, 10);
  Matrix b_host = random_matrix(15, 6, 11);
  Matrix out_host(15, 6);
  auto a = device_mat(h.ctx, a_host, "a");
  auto b = device_mat(h.ctx, b_host, "b");
  auto out = device_mat(h.ctx, out_host, "out");
  dense_binary(h.ctx,
               {.a = &a, .b = &b, .out = &out, .fn = [](float x, float y) { return x - y; }});
  for (Index r = 0; r < 15; ++r) {
    for (Index c = 0; c < 6; ++c) {
      EXPECT_FLOAT_EQ(out_host(r, c), a_host(r, c) - b_host(r, c));
    }
  }
}

TEST(IndexedBinary, FetchesFirstOperandByIndex) {
  DenseHarness h;
  Matrix a_host = random_matrix(30, 5, 12);
  std::vector<graph::NodeId> index = {7, 7, 0, 29, 13};
  Matrix b_host = random_matrix(5, 5, 13);
  Matrix out_host(5, 5);
  auto a = device_mat(h.ctx, a_host, "a");
  auto b = device_mat(h.ctx, b_host, "b");
  auto out = device_mat(h.ctx, out_host, "out");
  auto idx_buf = h.ctx.mem().alloc("idx", index.size() * 4);
  indexed_binary(h.ctx, {.a = &a, .row_index = index, .index_buf = idx_buf, .b = &b, .out = &out,
                         .fn = [](float x, float y) { return x + y; }});
  for (Index r = 0; r < 5; ++r) {
    for (Index c = 0; c < 5; ++c) {
      EXPECT_FLOAT_EQ(out_host(r, c), a_host(index[static_cast<std::size_t>(r)], c) + b_host(r, c));
    }
  }
}

TEST(RowDot, ComputesAttentionScalars) {
  DenseHarness h;
  Matrix feat_host = random_matrix(25, 10, 14);
  Matrix vec_host = random_matrix(10, 1, 15);
  Matrix out_host(25, 1);
  auto feat = device_mat(h.ctx, feat_host, "feat");
  auto vec = device_mat(h.ctx, vec_host, "vec");
  auto out = device_mat(h.ctx, out_host, "out");
  row_dot(h.ctx, {.feat = &feat, .vec = &vec, .out = &out});
  for (Index r = 0; r < 25; ++r) {
    float expect = 0.0f;
    for (Index c = 0; c < 10; ++c) expect += feat_host(r, c) * vec_host(c, 0);
    EXPECT_NEAR(out_host(r, 0), expect, 1e-4f);
  }
}

TEST(DenseGemm, BoundaryTileIssuedFlopsPadded) {
  DenseHarness h;
  Matrix a_host(65, 64), b_host(64, 65), c_host(65, 65);
  auto a = device_mat(h.ctx, a_host, "a");
  auto b = device_mat(h.ctx, b_host, "b");
  auto c = device_mat(h.ctx, c_host, "c");
  const sim::KernelStats& ks = dense_gemm(h.ctx, {.a = &a, .b = &b, .c = &c});
  EXPECT_GT(ks.issued_flops, ks.flops);
}

}  // namespace
}  // namespace gnnbridge::kernels
