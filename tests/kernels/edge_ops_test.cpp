#include "kernels/edge_ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/balance/neighbor_grouping.hpp"
#include "tests/testing/util.hpp"

namespace gnnbridge::kernels {
namespace {

using testing::random_graph;
using testing::random_matrix;

struct EdgeHarness {
  sim::SimContext ctx{sim::v100()};
  graph::Csr csr;
  GraphOnDevice gdev;
  std::vector<Task> tasks;

  explicit EdgeHarness(graph::Csr g) : csr(std::move(g)) {
    gdev = device_graph(ctx, csr, "g");
    tasks = natural_tasks(csr);
  }
};

TEST(EdgeMap, AppliesFunction) {
  EdgeHarness h(random_graph(20, 4.0, 1));
  Matrix in_host = random_matrix(h.csr.num_edges(), 1, 2);
  Matrix out_host(h.csr.num_edges(), 1);
  auto in = device_mat(h.ctx, in_host, "in");
  auto out = device_mat(h.ctx, out_host, "out");
  edge_map(h.ctx, {.in = &in, .out = &out, .fn = [](float x) { return std::exp(x); }});
  for (graph::EdgeId i = 0; i < h.csr.num_edges(); ++i) {
    EXPECT_FLOAT_EQ(out_host(i, 0), std::exp(in_host(i, 0)));
  }
}

TEST(EdgeMap, InPlaceAliasingWorks) {
  EdgeHarness h(random_graph(15, 3.0, 3));
  Matrix e_host = random_matrix(h.csr.num_edges(), 1, 4);
  const Matrix original = e_host;
  auto e = device_mat(h.ctx, e_host, "e");
  edge_map(h.ctx, {.in = &e, .out = &e, .fn = [](float x) { return 2.0f * x; }});
  for (graph::EdgeId i = 0; i < h.csr.num_edges(); ++i) {
    EXPECT_FLOAT_EQ(e_host(i, 0), 2.0f * original(i, 0));
  }
}

TEST(EdgeBinary, Divides) {
  EdgeHarness h(random_graph(15, 3.0, 5));
  Matrix a_host = random_matrix(h.csr.num_edges(), 1, 6, 1.0f, 2.0f);
  Matrix b_host = random_matrix(h.csr.num_edges(), 1, 7, 1.0f, 2.0f);
  Matrix out_host(h.csr.num_edges(), 1);
  auto a = device_mat(h.ctx, a_host, "a");
  auto b = device_mat(h.ctx, b_host, "b");
  auto out = device_mat(h.ctx, out_host, "out");
  edge_binary(h.ctx,
              {.a = &a, .b = &b, .out = &out, .fn = [](float x, float y) { return x / y; }});
  for (graph::EdgeId i = 0; i < h.csr.num_edges(); ++i) {
    EXPECT_FLOAT_EQ(out_host(i, 0), a_host(i, 0) / b_host(i, 0));
  }
}

TEST(SegmentSum, SumsPerCenter) {
  EdgeHarness h(random_graph(25, 5.0, 8));
  Matrix e_host = random_matrix(h.csr.num_edges(), 1, 9);
  Matrix acc_host(h.csr.num_nodes, 1);
  auto e = device_mat(h.ctx, e_host, "e");
  auto acc = device_mat(h.ctx, acc_host, "acc");
  segment_sum(h.ctx, {.graph = &h.gdev, .tasks = h.tasks, .edge_val = &e, .node_out = &acc});
  for (graph::NodeId v = 0; v < h.csr.num_nodes; ++v) {
    float expect = 0.0f;
    for (graph::EdgeId i = h.csr.row_ptr[v]; i < h.csr.row_ptr[static_cast<std::size_t>(v) + 1];
         ++i) {
      expect += e_host(i, 0);
    }
    EXPECT_NEAR(acc_host(v, 0), expect, 1e-4f);
  }
}

TEST(SegmentSum, SplitTasksAccumulate) {
  EdgeHarness h(testing::star_graph(33));  // node 0: 32 edges
  Matrix e_host(h.csr.num_edges(), 1);
  e_host.fill(1.0f);
  Matrix acc_host(h.csr.num_nodes, 1);
  auto e = device_mat(h.ctx, e_host, "e");
  auto acc = device_mat(h.ctx, acc_host, "acc");
  const core::GroupedTasks grouped = core::neighbor_group_tasks(h.csr, 8);
  EXPECT_TRUE(grouped.any_split);
  segment_sum(h.ctx, {.graph = &h.gdev,
                      .tasks = grouped.tasks,
                      .edge_val = &e,
                      .node_out = &acc,
                      .atomic_merge = true});
  EXPECT_FLOAT_EQ(acc_host(0, 0), 32.0f);
}

TEST(BroadcastEdge, CopiesCenterValueToEdges) {
  EdgeHarness h(random_graph(20, 4.0, 10));
  Matrix val_host = random_matrix(h.csr.num_nodes, 1, 11);
  Matrix e_host(h.csr.num_edges(), 1);
  auto val = device_mat(h.ctx, val_host, "val");
  auto e = device_mat(h.ctx, e_host, "e");
  broadcast_edge(h.ctx, {.graph = &h.gdev, .tasks = h.tasks, .node_val = &val, .edge_out = &e});
  for (graph::NodeId v = 0; v < h.csr.num_nodes; ++v) {
    for (graph::EdgeId i = h.csr.row_ptr[v]; i < h.csr.row_ptr[static_cast<std::size_t>(v) + 1];
         ++i) {
      EXPECT_EQ(e_host(i, 0), val_host(v, 0));
    }
  }
}

TEST(EdgeOps, SevenKernelPipelineCountsSevenLaunches) {
  // Listing 1's op-per-kernel structure priced by launch count.
  EdgeHarness h(random_graph(20, 4.0, 12));
  Matrix e_host = random_matrix(h.csr.num_edges(), 1, 13);
  Matrix acc_host(h.csr.num_nodes, 1);
  auto e = device_mat(h.ctx, e_host, "e");
  auto acc = device_mat(h.ctx, acc_host, "acc");
  h.ctx.reset_stats();
  edge_map(h.ctx, {.in = &e, .out = &e, .fn = [](float x) { return x; }});
  edge_map(h.ctx, {.in = &e, .out = &e, .fn = [](float x) { return x; }});
  segment_sum(h.ctx, {.graph = &h.gdev, .tasks = h.tasks, .edge_val = &e, .node_out = &acc});
  EXPECT_EQ(h.ctx.stats().num_launches(), 3);
  const double launch_cost =
      3.0 * h.ctx.spec().kernel_launch_cycles;
  EXPECT_GE(h.ctx.stats().total_cycles, launch_cost);
}

}  // namespace
}  // namespace gnnbridge::kernels
