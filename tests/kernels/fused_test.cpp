#include "kernels/fused.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/balance/neighbor_grouping.hpp"
#include "kernels/edge_ops.hpp"
#include "kernels/sddmm.hpp"
#include "kernels/spmm.hpp"
#include "tests/testing/util.hpp"

namespace gnnbridge::kernels {
namespace {

using testing::random_graph;
using testing::random_matrix;

/// Everything a GAT layer's graph phase needs.
struct GatHarness {
  sim::SimContext ctx{sim::v100()};
  graph::Csr csr;
  GraphOnDevice gdev;
  Matrix att_src_host, att_dst_host, feat_host;
  Matrix e_host, vacc_host, out_host;
  FeatureMat att_src, att_dst, feat, e, vacc, out;

  GatHarness(graph::Csr g, Index f, std::uint64_t seed) : csr(std::move(g)) {
    gdev = device_graph(ctx, csr, "g");
    att_src_host = random_matrix(csr.num_nodes, 1, seed);
    att_dst_host = random_matrix(csr.num_nodes, 1, seed + 1);
    feat_host = random_matrix(csr.num_nodes, f, seed + 2);
    e_host = Matrix(csr.num_edges(), 1);
    vacc_host = Matrix(csr.num_nodes, 1);
    out_host = Matrix(csr.num_nodes, f);
    att_src = device_mat(ctx, att_src_host, "as");
    att_dst = device_mat(ctx, att_dst_host, "ad");
    feat = device_mat(ctx, feat_host, "feat");
    e = device_mat(ctx, e_host, "e");
    vacc = device_mat(ctx, vacc_host, "vacc");
    out = device_mat(ctx, out_host, "out");
  }

  /// The unfused Listing-1 reference result for the same inputs.
  Matrix reference() {
    Matrix exp_scores(csr.num_edges(), 1);
    Matrix acc(csr.num_nodes, 1);
    for (graph::NodeId v = 0; v < csr.num_nodes; ++v) {
      for (graph::EdgeId i = csr.row_ptr[v]; i < csr.row_ptr[static_cast<std::size_t>(v) + 1];
           ++i) {
        const graph::NodeId u = csr.col_idx[static_cast<std::size_t>(i)];
        const float raw = att_src_host(u, 0) + att_dst_host(v, 0);
        const float score = std::exp(raw >= 0.0f ? raw : 0.2f * raw);
        exp_scores(i, 0) = score;
        acc(v, 0) += score;
      }
    }
    Matrix result(csr.num_nodes, feat_host.cols());
    for (graph::NodeId v = 0; v < csr.num_nodes; ++v) {
      const float inv = acc(v, 0) != 0.0f ? 1.0f / acc(v, 0) : 0.0f;
      for (graph::EdgeId i = csr.row_ptr[v]; i < csr.row_ptr[static_cast<std::size_t>(v) + 1];
           ++i) {
        const graph::NodeId u = csr.col_idx[static_cast<std::size_t>(i)];
        const float w = exp_scores(i, 0) * inv;
        for (Index c = 0; c < feat_host.cols(); ++c) result(v, c) += w * feat_host(u, c);
      }
    }
    return result;
  }
};

TEST(GatEdgeFused, ScoresMatchUnfusedPipeline) {
  GatHarness h(random_graph(40, 5.0, 1), 8, 2);
  const auto tasks = natural_tasks(h.csr);
  gat_edge_fused(h.ctx, {.graph = &h.gdev, .tasks = tasks, .att_src = &h.att_src,
                         .att_dst = &h.att_dst, .edge_out = &h.e, .vacc_out = nullptr});
  for (graph::NodeId v = 0; v < h.csr.num_nodes; ++v) {
    for (graph::EdgeId i = h.csr.row_ptr[v];
         i < h.csr.row_ptr[static_cast<std::size_t>(v) + 1]; ++i) {
      const graph::NodeId u = h.csr.col_idx[static_cast<std::size_t>(i)];
      const float raw = h.att_src_host(u, 0) + h.att_dst_host(v, 0);
      const float expect = std::exp(raw >= 0.0f ? raw : 0.2f * raw);
      EXPECT_NEAR(h.e_host(i, 0), expect, 1e-5f);
    }
  }
}

TEST(GatEdgeFused, AccumulatesNormalizationSum) {
  GatHarness h(random_graph(30, 4.0, 3), 4, 4);
  const auto tasks = natural_tasks(h.csr);
  gat_edge_fused(h.ctx, {.graph = &h.gdev, .tasks = tasks, .att_src = &h.att_src,
                         .att_dst = &h.att_dst, .edge_out = &h.e, .vacc_out = &h.vacc});
  for (graph::NodeId v = 0; v < h.csr.num_nodes; ++v) {
    float expect = 0.0f;
    for (graph::EdgeId i = h.csr.row_ptr[v];
         i < h.csr.row_ptr[static_cast<std::size_t>(v) + 1]; ++i) {
      expect += h.e_host(i, 0);
    }
    EXPECT_NEAR(h.vacc_host(v, 0), expect, 1e-4f);
  }
}

TEST(GatTwoKernelPipeline, MatchesReference) {
  GatHarness h(random_graph(50, 6.0, 5), 10, 6);
  const auto tasks = natural_tasks(h.csr);
  gat_edge_fused(h.ctx, {.graph = &h.gdev, .tasks = tasks, .att_src = &h.att_src,
                         .att_dst = &h.att_dst, .edge_out = &h.e, .vacc_out = &h.vacc});
  gat_aggregate_fused(h.ctx, {.graph = &h.gdev, .tasks = tasks, .feat = &h.feat,
                              .edge_weight = &h.e, .vacc = &h.vacc, .out = &h.out});
  EXPECT_TRUE(tensor::allclose(h.out_host, h.reference(), 1e-3f, 1e-4f));
}

TEST(GatTwoKernelPipeline, SplitTasksMatchReference) {
  // The whole point of the linear property: NG-split tasks still give the
  // correct softmax-normalized aggregation.
  GatHarness h(random_graph(40, 12.0, 7), 6, 8);
  const core::GroupedTasks grouped = core::neighbor_group_tasks(h.csr, 4);
  ASSERT_TRUE(grouped.any_split);
  gat_edge_fused(h.ctx, {.graph = &h.gdev, .tasks = grouped.tasks, .att_src = &h.att_src,
                         .att_dst = &h.att_dst, .edge_out = &h.e, .vacc_out = &h.vacc,
                         .atomic_merge = true});
  gat_aggregate_fused(h.ctx, {.graph = &h.gdev, .tasks = grouped.tasks, .feat = &h.feat,
                              .edge_weight = &h.e, .vacc = &h.vacc, .out = &h.out,
                              .atomic_merge = true});
  EXPECT_TRUE(tensor::allclose(h.out_host, h.reference(), 1e-3f, 1e-4f));
}

TEST(GatAdapterOnlyPipeline, MatchesReference) {
  // Adapter without the linear property: materialized normalized weights.
  GatHarness h(random_graph(35, 5.0, 9), 7, 10);
  const auto tasks = natural_tasks(h.csr);
  gat_edge_fused(h.ctx, {.graph = &h.gdev, .tasks = tasks, .att_src = &h.att_src,
                         .att_dst = &h.att_dst, .edge_out = &h.e, .vacc_out = nullptr});
  segment_sum(h.ctx,
              {.graph = &h.gdev, .tasks = tasks, .edge_val = &h.e, .node_out = &h.vacc});
  softmax_div_fused(h.ctx, {.graph = &h.gdev, .tasks = tasks, .vacc = &h.vacc, .edge = &h.e});
  gat_aggregate_fused(h.ctx, {.graph = &h.gdev, .tasks = tasks, .feat = &h.feat,
                              .edge_weight = &h.e, .vacc = nullptr, .out = &h.out});
  EXPECT_TRUE(tensor::allclose(h.out_host, h.reference(), 1e-3f, 1e-4f));
}

TEST(FusedPipeline, FewerLaunchesThanListing1) {
  GatHarness h(random_graph(30, 4.0, 11), 4, 12);
  const auto tasks = natural_tasks(h.csr);
  h.ctx.reset_stats();
  gat_edge_fused(h.ctx, {.graph = &h.gdev, .tasks = tasks, .att_src = &h.att_src,
                         .att_dst = &h.att_dst, .edge_out = &h.e, .vacc_out = &h.vacc});
  gat_aggregate_fused(h.ctx, {.graph = &h.gdev, .tasks = tasks, .feat = &h.feat,
                              .edge_weight = &h.e, .vacc = &h.vacc, .out = &h.out});
  EXPECT_EQ(h.ctx.stats().num_launches(), 2);  // vs 7 in Listing 1
}

TEST(RowScaleKernel, DividesRowsByAcc) {
  sim::SimContext ctx(sim::v100());
  Matrix vacc_host(3, 1, {2.0f, 4.0f, 0.0f});
  Matrix mat_host(3, 2, {2, 4, 8, 12, 5, 5});
  auto vacc = device_mat(ctx, vacc_host, "vacc");
  auto mat = device_mat(ctx, mat_host, "mat");
  row_scale_kernel(ctx, {.vacc = &vacc, .mat = &mat});
  EXPECT_FLOAT_EQ(mat_host(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(mat_host(1, 1), 3.0f);
  EXPECT_FLOAT_EQ(mat_host(2, 0), 0.0f);  // zero acc -> zeroed row
}

TEST(AggregateBiasActFused, MatchesSeparateKernels) {
  const graph::Csr csr = random_graph(40, 5.0, 13);
  sim::SimContext ctx(sim::v100());
  auto gdev = device_graph(ctx, csr, "g");
  Matrix feat_host = random_matrix(40, 8, 14);
  Matrix ew_host = random_matrix(csr.num_edges(), 1, 15, 0.1f, 1.0f);
  Matrix bias_host = random_matrix(8, 1, 16, -0.5f, 0.5f);
  Matrix fused_out_host(40, 8), sep_out_host(40, 8);
  auto feat = device_mat(ctx, feat_host, "feat");
  auto ew = device_mat(ctx, ew_host, "ew");
  auto bias = device_mat(ctx, bias_host, "bias");
  auto fused_out = device_mat(ctx, fused_out_host, "fo");
  auto sep_out = device_mat(ctx, sep_out_host, "so");
  const auto tasks = natural_tasks(csr);

  aggregate_bias_act_fused(ctx, {.graph = &gdev, .tasks = tasks, .feat = &feat,
                                 .edge_weight = &ew, .bias = &bias, .out = &fused_out,
                                 .relu = true});

  SpmmArgs spmm{.graph = &gdev, .tasks = tasks, .src = &feat, .edge_weight = &ew,
                .out = &sep_out};
  spmm_node(ctx, spmm);
  bias_act_kernel(ctx, {.bias = &bias, .mat = &sep_out, .relu = true});

  EXPECT_TRUE(tensor::allclose(fused_out_host, sep_out_host, 1e-4f, 1e-5f));
}

TEST(AggregateBiasActFused, DeferredEpilogueUnderSplit) {
  const graph::Csr csr = testing::star_graph(30);
  sim::SimContext ctx(sim::v100());
  auto gdev = device_graph(ctx, csr, "g");
  Matrix feat_host = random_matrix(30, 4, 17);
  Matrix bias_host = random_matrix(4, 1, 18);
  Matrix out_host(30, 4), ref_host(30, 4);
  auto feat = device_mat(ctx, feat_host, "feat");
  auto bias = device_mat(ctx, bias_host, "bias");
  auto out = device_mat(ctx, out_host, "out");
  auto ref = device_mat(ctx, ref_host, "ref");

  const auto whole = natural_tasks(csr);
  aggregate_bias_act_fused(ctx, {.graph = &gdev, .tasks = whole, .feat = &feat, .bias = &bias,
                                 .out = &ref, .relu = true});

  const core::GroupedTasks grouped = core::neighbor_group_tasks(csr, 8);
  ASSERT_TRUE(grouped.any_split);
  aggregate_bias_act_fused(ctx, {.graph = &gdev, .tasks = grouped.tasks, .feat = &feat,
                                 .bias = &bias, .out = &out, .relu = true,
                                 .epilogue_inline = false, .atomic_merge = true});
  bias_act_kernel(ctx, {.bias = &bias, .mat = &out, .relu = true});
  EXPECT_TRUE(tensor::allclose(out_host, ref_host, 1e-4f, 1e-5f));
}

TEST(BiasActKernel, NoBiasJustActivation) {
  sim::SimContext ctx(sim::v100());
  Matrix m_host(1, 3, {-1, 0, 2});
  auto m = device_mat(ctx, m_host, "m");
  bias_act_kernel(ctx, {.bias = nullptr, .mat = &m, .relu = true});
  EXPECT_EQ(m_host, Matrix(1, 3, {0, 0, 2}));
}

}  // namespace
}  // namespace gnnbridge::kernels
