#include "kernels/spmm.hpp"

#include <gtest/gtest.h>

#include "core/balance/neighbor_grouping.hpp"
#include "models/layers.hpp"
#include "tests/testing/util.hpp"

namespace gnnbridge::kernels {
namespace {

using testing::random_graph;
using testing::random_matrix;

struct SpmmHarness {
  sim::SimContext ctx;
  graph::Csr csr;
  GraphOnDevice gdev;
  Matrix src_host;
  Matrix out_host;
  Matrix ew_host;
  FeatureMat src, out, ew;

  SpmmHarness(graph::Csr g, Index feat, std::uint64_t seed, bool weighted)
      : ctx(sim::v100()), csr(std::move(g)) {
    gdev = device_graph(ctx, csr, "g");
    src_host = random_matrix(csr.num_nodes, feat, seed);
    out_host = Matrix(csr.num_nodes, feat);
    src = device_mat(ctx, src_host, "src");
    out = device_mat(ctx, out_host, "out");
    if (weighted) {
      ew_host = random_matrix(csr.num_edges(), 1, seed + 1, 0.1f, 1.0f);
      ew = device_mat(ctx, ew_host, "ew");
    }
  }

  SpmmArgs args(std::span<const Task> tasks, Reduce reduce, bool weighted) {
    SpmmArgs a;
    a.graph = &gdev;
    a.tasks = tasks;
    a.src = &src;
    a.edge_weight = weighted ? &ew : nullptr;
    a.out = &out;
    a.reduce = reduce;
    return a;
  }

  std::vector<float> weights(bool weighted) const {
    if (weighted) {
      return std::vector<float>(ew_host.data(), ew_host.data() + ew_host.size());
    }
    return std::vector<float>(static_cast<std::size_t>(csr.num_edges()), 1.0f);
  }
};

TEST(SpmmNode, SumMatchesReference) {
  SpmmHarness h(random_graph(80, 5.0, 1), 16, 2, /*weighted=*/true);
  const auto tasks = natural_tasks(h.csr);
  spmm_node(h.ctx, h.args(tasks, Reduce::kSum, true));
  const Matrix expect = models::layer_sum(h.csr, h.src_host, h.weights(true));
  EXPECT_TRUE(tensor::allclose(h.out_host, expect, 1e-4f, 1e-5f));
}

TEST(SpmmNode, UnweightedSum) {
  SpmmHarness h(random_graph(60, 4.0, 3), 8, 4, /*weighted=*/false);
  const auto tasks = natural_tasks(h.csr);
  spmm_node(h.ctx, h.args(tasks, Reduce::kSum, false));
  const Matrix expect = models::layer_sum(h.csr, h.src_host, h.weights(false));
  EXPECT_TRUE(tensor::allclose(h.out_host, expect));
}

TEST(SpmmNode, MeanMatchesReference) {
  SpmmHarness h(random_graph(70, 6.0, 5), 12, 6, /*weighted=*/true);
  const auto tasks = natural_tasks(h.csr);
  spmm_node(h.ctx, h.args(tasks, Reduce::kMean, true));
  const Matrix expect = models::layer_mean(h.csr, h.src_host, h.weights(true));
  EXPECT_TRUE(tensor::allclose(h.out_host, expect));
}

TEST(SpmmNode, MaxHandlesZeroDegreeRows) {
  // Star graph: only node 0 has neighbors; all others must come out 0.
  SpmmHarness h(testing::star_graph(10), 4, 7, /*weighted=*/false);
  const auto tasks = natural_tasks(h.csr);
  spmm_node(h.ctx, h.args(tasks, Reduce::kMax, false));
  for (graph::NodeId v = 1; v < 10; ++v) {
    for (Index f = 0; f < 4; ++f) EXPECT_EQ(h.out_host(v, f), 0.0f) << v;
  }
  // Node 0's max over all others.
  for (Index f = 0; f < 4; ++f) {
    float mx = -1e30f;
    for (graph::NodeId u = 1; u < 10; ++u) mx = std::max(mx, h.src_host(u, f));
    EXPECT_FLOAT_EQ(h.out_host(0, f), mx);
  }
}

/// Property sweep: neighbor-grouped (split) tasks must agree with
/// whole-row tasks for every order-insensitive reducer — the correctness
/// claim behind the paper's atomic-merge strategy.
class SpmmGrouping
    : public ::testing::TestWithParam<std::tuple<Reduce, int /*bound*/, int /*seed*/>> {};

TEST_P(SpmmGrouping, SplitTasksMatchWholeRows) {
  auto [reduce, bound, seed] = GetParam();
  SpmmHarness h(random_graph(64, 8.0, static_cast<std::uint64_t>(seed)), 10,
                static_cast<std::uint64_t>(seed) + 100, /*weighted=*/true);

  const auto whole = natural_tasks(h.csr);
  spmm_node(h.ctx, h.args(whole, reduce, true));
  const Matrix expect = h.out_host;

  const core::GroupedTasks grouped = core::neighbor_group_tasks(h.csr, bound);
  SpmmArgs a = h.args(grouped.tasks, reduce, true);
  a.atomic_merge = grouped.any_split;
  spmm_node(h.ctx, a);
  EXPECT_TRUE(tensor::allclose(h.out_host, expect, 1e-4f, 1e-5f))
      << "reduce=" << static_cast<int>(reduce) << " bound=" << bound;
}

INSTANTIATE_TEST_SUITE_P(
    ReducersAndBounds, SpmmGrouping,
    ::testing::Combine(::testing::Values(Reduce::kSum, Reduce::kMean, Reduce::kMax),
                       ::testing::Values(1, 3, 16), ::testing::Values(1, 2, 3)));

TEST(SpmmNode, TaskOrderDoesNotChangeResults) {
  // LAS permutes task order; the output must be identical.
  SpmmHarness h(random_graph(50, 5.0, 9), 6, 11, /*weighted=*/true);
  const auto tasks = natural_tasks(h.csr);
  spmm_node(h.ctx, h.args(tasks, Reduce::kSum, true));
  const Matrix expect = h.out_host;

  std::vector<Task> reversed(tasks.rbegin(), tasks.rend());
  spmm_node(h.ctx, h.args(reversed, Reduce::kSum, true));
  EXPECT_TRUE(tensor::allclose(h.out_host, expect, 1e-5f, 1e-6f));
}

TEST(SpmmNode, EmitsOneBlockPerTask) {
  SpmmHarness h(random_graph(40, 3.0, 13), 4, 15, false);
  const auto tasks = natural_tasks(h.csr);
  const sim::KernelStats& ks = spmm_node(h.ctx, h.args(tasks, Reduce::kSum, false));
  EXPECT_EQ(ks.num_blocks, 40);
}

TEST(SpmmNode, FlopCountTracksEdgesTimesFeat) {
  SpmmHarness h(testing::star_graph(9), 8, 17, /*weighted=*/true);
  const auto tasks = natural_tasks(h.csr);
  const sim::KernelStats& ks = spmm_node(h.ctx, h.args(tasks, Reduce::kSum, true));
  // 8 edges * 8 feat * 2 flops.
  EXPECT_DOUBLE_EQ(ks.flops, 128.0);
}

TEST(SpmmNode, LanePaddingInflatesIssuedFlops) {
  SpmmHarness h(random_graph(30, 4.0, 19), 20, 21, false);
  const auto tasks = natural_tasks(h.csr);
  SpmmArgs a = h.args(tasks, Reduce::kSum, false);
  a.lanes = 32;  // F=20 on 32 lanes: 60% waste
  const sim::KernelStats& ks = spmm_node(h.ctx, a);
  EXPECT_NEAR(ks.issued_flops / ks.flops, 32.0 / 20.0, 1e-9);
}

TEST(SpmmNode, SimulateOnlyLeavesOutputUntouched) {
  SpmmHarness h(random_graph(20, 3.0, 23), 4, 25, false);
  h.out_host.fill(42.0f);
  const auto tasks = natural_tasks(h.csr);
  SpmmArgs a = h.args(tasks, Reduce::kSum, false);
  a.mode = ExecMode::kSimulateOnly;
  const sim::KernelStats& ks = spmm_node(h.ctx, a);
  EXPECT_EQ(h.out_host(5, 2), 42.0f);
  EXPECT_GT(ks.l2_misses, 0u);  // trace still emitted
}

TEST(SpmmVendor, MatchesNodeParallelNumerics) {
  SpmmHarness h(random_graph(45, 5.0, 27), 8, 29, /*weighted=*/true);
  const auto tasks = natural_tasks(h.csr);
  spmm_node(h.ctx, h.args(tasks, Reduce::kSum, true));
  const Matrix expect = h.out_host;
  spmm_vendor(h.ctx, h.args({}, Reduce::kSum, true));
  EXPECT_TRUE(tensor::allclose(h.out_host, expect, 1e-5f, 1e-6f));
}

TEST(PadFactor, ExactMultiplesHaveNoWaste) {
  EXPECT_DOUBLE_EQ(pad_factor(64, 32), 1.0);
  EXPECT_DOUBLE_EQ(pad_factor(32, 32), 1.0);
}

TEST(PadFactor, WorstJustPastBoundary) {
  EXPECT_NEAR(pad_factor(33, 32), 64.0 / 33.0, 1e-12);
  EXPECT_GT(pad_factor(17, 16), pad_factor(16, 16));
}

}  // namespace
}  // namespace gnnbridge::kernels
